#include "nn/lstm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace backsort {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

void InitUniform(std::vector<double>& w, double scale, Rng& rng) {
  for (double& v : w) v = scale * (2.0 * rng.NextDouble() - 1.0);
}

}  // namespace

struct LstmRegressor::ForwardCache {
  // Per-step activations, each of size hidden (H) or 4H for gates.
  std::vector<std::vector<double>> gates;  // pre-activation, 4H
  std::vector<std::vector<double>> i, f, g, o;
  std::vector<std::vector<double>> c, h;   // post-step states
  double y_hat = 0.0;
};

struct LstmRegressor::Gradients {
  std::vector<double> w_ih, w_hh, b, w_out;
  double b_out = 0.0;

  explicit Gradients(const Config& c)
      : w_ih(4 * c.hidden_size * c.input_size, 0.0),
        w_hh(4 * c.hidden_size * c.hidden_size, 0.0),
        b(4 * c.hidden_size, 0.0),
        w_out(c.hidden_size, 0.0) {}

  void Zero() {
    std::fill(w_ih.begin(), w_ih.end(), 0.0);
    std::fill(w_hh.begin(), w_hh.end(), 0.0);
    std::fill(b.begin(), b.end(), 0.0);
    std::fill(w_out.begin(), w_out.end(), 0.0);
    b_out = 0.0;
  }
};

LstmRegressor::LstmRegressor(const Config& config)
    : config_(config), rng_(config.seed) {
  const size_t H = config_.hidden_size;
  const size_t I = config_.input_size;
  w_ih_.resize(4 * H * I);
  w_hh_.resize(4 * H * H);
  b_.assign(4 * H, 0.0);
  w_out_.resize(H);
  const double scale = 1.0 / std::sqrt(static_cast<double>(I + H));
  InitUniform(w_ih_, scale, rng_);
  InitUniform(w_hh_, scale, rng_);
  InitUniform(w_out_, scale, rng_);
  // Forget-gate bias starts positive, the standard trick for gradient flow.
  for (size_t j = 0; j < H; ++j) b_[H + j] = 1.0;

  m_w_ih_.assign(w_ih_.size(), 0.0);
  v_w_ih_.assign(w_ih_.size(), 0.0);
  m_w_hh_.assign(w_hh_.size(), 0.0);
  v_w_hh_.assign(w_hh_.size(), 0.0);
  m_b_.assign(b_.size(), 0.0);
  v_b_.assign(b_.size(), 0.0);
  m_w_out_.assign(w_out_.size(), 0.0);
  v_w_out_.assign(w_out_.size(), 0.0);
}

std::vector<LstmRegressor::Sample> LstmRegressor::MakeSamples(
    const std::vector<double>& series, const Config& config) {
  std::vector<Sample> out;
  const size_t window = config.input_size * config.seq_len;
  if (series.size() <= window) return out;
  out.reserve(series.size() - window);
  for (size_t start = 0; start + window < series.size(); ++start) {
    Sample s;
    s.x.assign(series.begin() + static_cast<ptrdiff_t>(start),
               series.begin() + static_cast<ptrdiff_t>(start + window));
    s.y = series[start + window];
    out.push_back(std::move(s));
  }
  return out;
}

void LstmRegressor::Forward(const std::vector<double>& x,
                            ForwardCache* cache) const {
  const size_t H = config_.hidden_size;
  const size_t I = config_.input_size;
  const size_t T = config_.seq_len;
  cache->gates.assign(T, std::vector<double>(4 * H, 0.0));
  cache->i.assign(T, std::vector<double>(H));
  cache->f.assign(T, std::vector<double>(H));
  cache->g.assign(T, std::vector<double>(H));
  cache->o.assign(T, std::vector<double>(H));
  cache->c.assign(T, std::vector<double>(H, 0.0));
  cache->h.assign(T, std::vector<double>(H, 0.0));

  std::vector<double> h_prev(H, 0.0);
  std::vector<double> c_prev(H, 0.0);
  for (size_t t = 0; t < T; ++t) {
    const double* xt = x.data() + t * I;
    std::vector<double>& z = cache->gates[t];
    for (size_t r = 0; r < 4 * H; ++r) {
      double acc = b_[r];
      const double* wi = w_ih_.data() + r * I;
      for (size_t k = 0; k < I; ++k) acc += wi[k] * xt[k];
      const double* wh = w_hh_.data() + r * H;
      for (size_t k = 0; k < H; ++k) acc += wh[k] * h_prev[k];
      z[r] = acc;
    }
    for (size_t j = 0; j < H; ++j) {
      const double ig = Sigmoid(z[j]);
      const double fg = Sigmoid(z[H + j]);
      const double gg = std::tanh(z[2 * H + j]);
      const double og = Sigmoid(z[3 * H + j]);
      const double cc = fg * c_prev[j] + ig * gg;
      const double hh = og * std::tanh(cc);
      cache->i[t][j] = ig;
      cache->f[t][j] = fg;
      cache->g[t][j] = gg;
      cache->o[t][j] = og;
      cache->c[t][j] = cc;
      cache->h[t][j] = hh;
    }
    h_prev = cache->h[t];
    c_prev = cache->c[t];
  }
  double y = b_out_;
  for (size_t j = 0; j < H; ++j) y += w_out_[j] * h_prev[j];
  cache->y_hat = y;
}

double LstmRegressor::Predict(const std::vector<double>& x) const {
  ForwardCache cache;
  Forward(x, &cache);
  return cache.y_hat;
}

double LstmRegressor::Backward(const Sample& sample, Gradients* grads) const {
  const size_t H = config_.hidden_size;
  const size_t I = config_.input_size;
  const size_t T = config_.seq_len;
  ForwardCache cache;
  Forward(sample.x, &cache);

  const double err = cache.y_hat - sample.y;  // dL/dy for L = (y-Y)^2 / 1
  // Head gradients.
  for (size_t j = 0; j < H; ++j) {
    grads->w_out[j] += 2.0 * err * cache.h[T - 1][j];
  }
  grads->b_out += 2.0 * err;

  std::vector<double> dh(H, 0.0);
  std::vector<double> dc(H, 0.0);
  for (size_t j = 0; j < H; ++j) dh[j] = 2.0 * err * w_out_[j];

  const std::vector<double> zeros(H, 0.0);
  for (size_t t = T; t-- > 0;) {
    const std::vector<double>& c_prev = t == 0 ? zeros : cache.c[t - 1];
    const std::vector<double>& h_prev = t == 0 ? zeros : cache.h[t - 1];
    std::vector<double> dz(4 * H, 0.0);
    for (size_t j = 0; j < H; ++j) {
      const double tanh_c = std::tanh(cache.c[t][j]);
      const double do_ = dh[j] * tanh_c;
      const double dc_total =
          dc[j] + dh[j] * cache.o[t][j] * (1.0 - tanh_c * tanh_c);
      const double di = dc_total * cache.g[t][j];
      const double df = dc_total * c_prev[j];
      const double dg = dc_total * cache.i[t][j];
      dz[j] = di * cache.i[t][j] * (1.0 - cache.i[t][j]);
      dz[H + j] = df * cache.f[t][j] * (1.0 - cache.f[t][j]);
      dz[2 * H + j] = dg * (1.0 - cache.g[t][j] * cache.g[t][j]);
      dz[3 * H + j] = do_ * cache.o[t][j] * (1.0 - cache.o[t][j]);
      dc[j] = dc_total * cache.f[t][j];
    }
    const double* xt = sample.x.data() + t * I;
    for (size_t r = 0; r < 4 * H; ++r) {
      const double d = dz[r];
      if (d == 0.0) continue;
      double* gwi = grads->w_ih.data() + r * I;
      for (size_t k = 0; k < I; ++k) gwi[k] += d * xt[k];
      double* gwh = grads->w_hh.data() + r * H;
      for (size_t k = 0; k < H; ++k) gwh[k] += d * h_prev[k];
      grads->b[r] += d;
    }
    // dh for the previous step.
    std::fill(dh.begin(), dh.end(), 0.0);
    for (size_t k = 0; k < H; ++k) {
      double acc = 0.0;
      for (size_t r = 0; r < 4 * H; ++r) {
        acc += w_hh_[r * H + k] * dz[r];
      }
      dh[k] = acc;
    }
  }
  return err * err;
}

void LstmRegressor::AdamStep(const Gradients& grads, size_t batch,
                             size_t step) {
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;
  const double lr = config_.learning_rate;
  const double scale = 1.0 / static_cast<double>(batch);
  const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(step));
  const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(step));

  auto update = [&](std::vector<double>& w, std::vector<double>& m,
                    std::vector<double>& v, const std::vector<double>& g) {
    for (size_t idx = 0; idx < w.size(); ++idx) {
      const double grad = g[idx] * scale;
      m[idx] = kBeta1 * m[idx] + (1.0 - kBeta1) * grad;
      v[idx] = kBeta2 * v[idx] + (1.0 - kBeta2) * grad * grad;
      const double mhat = m[idx] / bc1;
      const double vhat = v[idx] / bc2;
      w[idx] -= lr * mhat / (std::sqrt(vhat) + kEps);
    }
  };
  update(w_ih_, m_w_ih_, v_w_ih_, grads.w_ih);
  update(w_hh_, m_w_hh_, v_w_hh_, grads.w_hh);
  update(b_, m_b_, v_b_, grads.b);
  update(w_out_, m_w_out_, v_w_out_, grads.w_out);
  {
    const double grad = grads.b_out / static_cast<double>(batch);
    m_b_out_ = kBeta1 * m_b_out_ + (1.0 - kBeta1) * grad;
    v_b_out_ = kBeta2 * v_b_out_ + (1.0 - kBeta2) * grad * grad;
    b_out_ -= lr * (m_b_out_ / bc1) / (std::sqrt(v_b_out_ / bc2) + kEps);
  }
}

double LstmRegressor::Train(const std::vector<Sample>& train) {
  if (train.empty()) return 0.0;
  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  Gradients grads(config_);
  size_t adam_step = 0;
  double last_epoch_mse = 0.0;
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    // Fisher-Yates shuffle with the deterministic RNG.
    for (size_t i = order.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(rng_.NextBelow(i));
      std::swap(order[i - 1], order[j]);
    }
    double epoch_loss = 0.0;
    size_t done = 0;
    while (done < order.size()) {
      const size_t batch =
          std::min(config_.batch_size, order.size() - done);
      grads.Zero();
      for (size_t k = 0; k < batch; ++k) {
        epoch_loss += Backward(train[order[done + k]], &grads);
      }
      ++adam_step;
      AdamStep(grads, batch, adam_step);
      done += batch;
    }
    last_epoch_mse = epoch_loss / static_cast<double>(train.size());
  }
  return last_epoch_mse;
}

double LstmRegressor::Evaluate(const std::vector<Sample>& samples) const {
  if (samples.empty()) return 0.0;
  double total = 0.0;
  for (const Sample& s : samples) {
    const double err = Predict(s.x) - s.y;
    total += err * err;
  }
  return total / static_cast<double>(samples.size());
}

ForecastOutcome RunForecastExperiment(const std::vector<double>& stored_series,
                                      const LstmRegressor::Config& config) {
  ForecastOutcome outcome;
  const size_t n = stored_series.size();
  if (n < 4 * config.input_size * config.seq_len) return outcome;
  const size_t split = n * 7 / 10;  // first 70% train, last 30% test

  // Standardize with train statistics only.
  double mean = 0.0;
  for (size_t i = 0; i < split; ++i) mean += stored_series[i];
  mean /= static_cast<double>(split);
  double var = 0.0;
  for (size_t i = 0; i < split; ++i) {
    const double d = stored_series[i] - mean;
    var += d * d;
  }
  var /= static_cast<double>(split);
  const double stddev = var > 0 ? std::sqrt(var) : 1.0;

  std::vector<double> norm(n);
  for (size_t i = 0; i < n; ++i) norm[i] = (stored_series[i] - mean) / stddev;

  const std::vector<double> train_series(norm.begin(),
                                         norm.begin() +
                                             static_cast<ptrdiff_t>(split));
  const std::vector<double> test_series(norm.begin() +
                                            static_cast<ptrdiff_t>(split),
                                        norm.end());
  const auto train = LstmRegressor::MakeSamples(train_series, config);
  const auto test = LstmRegressor::MakeSamples(test_series, config);

  LstmRegressor model(config);
  outcome.train_mse = model.Train(train);
  outcome.test_mse = model.Evaluate(test);
  return outcome;
}

}  // namespace backsort
