#ifndef BACKSORT_NN_LSTM_H_
#define BACKSORT_NN_LSTM_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace backsort {

/// Minimal LSTM regressor with a linear head, written from scratch for the
/// downstream-application experiment (paper Fig. 22): forecasting the next
/// value of a time series from windows of past values, trained on data as
/// stored (ordered vs. disordered) to show how out-of-order ingestion
/// degrades learning.
///
/// Architecture: input windows of `input_size` values form a sequence of
/// `seq_len` steps -> single LSTM layer (`hidden_size`) -> linear -> scalar.
/// Training is full BPTT with Adam on MSE loss. Sizes default to the
/// paper's (input 10, hidden 2).
class LstmRegressor {
 public:
  struct Config {
    size_t input_size = 10;
    size_t hidden_size = 2;
    size_t seq_len = 4;
    double learning_rate = 1e-2;
    size_t epochs = 30;
    size_t batch_size = 32;
    uint64_t seed = 7;
  };

  explicit LstmRegressor(const Config& config);

  /// Supervised pairs built from a series: x = seq_len consecutive windows
  /// of input_size values, y = the next value. The series is used exactly
  /// in its stored order — feeding a disordered series produces the
  /// degraded supervision the experiment measures.
  struct Sample {
    std::vector<double> x;  // seq_len * input_size, window-major
    double y;
  };

  /// Slices `series` into samples (values standardized by the caller).
  static std::vector<Sample> MakeSamples(const std::vector<double>& series,
                                         const Config& config);

  /// Trains on `train` and returns the final-epoch mean training MSE.
  double Train(const std::vector<Sample>& train);

  /// Mean MSE over a sample set without updating weights.
  double Evaluate(const std::vector<Sample>& samples) const;

  /// Single forward pass returning the scalar prediction.
  double Predict(const std::vector<double>& x) const;

 private:
  struct Gradients;
  struct ForwardCache;

  void Forward(const std::vector<double>& x, ForwardCache* cache) const;
  /// Accumulates gradients for one sample; returns its squared error.
  double Backward(const Sample& sample, Gradients* grads) const;
  void AdamStep(const Gradients& grads, size_t batch, size_t step);

  Config config_;

  // Parameters. Gate layout along the 4H axis: [input, forget, cell, output].
  std::vector<double> w_ih_;  // 4H x I
  std::vector<double> w_hh_;  // 4H x H
  std::vector<double> b_;     // 4H
  std::vector<double> w_out_; // H
  double b_out_ = 0.0;

  // Adam state (first and second moments, same shapes as parameters).
  std::vector<double> m_w_ih_, v_w_ih_;
  std::vector<double> m_w_hh_, v_w_hh_;
  std::vector<double> m_b_, v_b_;
  std::vector<double> m_w_out_, v_w_out_;
  double m_b_out_ = 0.0, v_b_out_ = 0.0;

  Rng rng_;
};

/// Runs the Fig. 22 protocol on a stored series: standardize using train
/// statistics, 70/30 split, train, report (train_mse, test_mse).
struct ForecastOutcome {
  double train_mse = 0.0;
  double test_mse = 0.0;
};
ForecastOutcome RunForecastExperiment(const std::vector<double>& stored_series,
                                      const LstmRegressor::Config& config);

}  // namespace backsort

#endif  // BACKSORT_NN_LSTM_H_
