#ifndef BACKSORT_BENCHKIT_WORKLOAD_H_
#define BACKSORT_BENCHKIT_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "disorder/delay_distribution.h"
#include "engine/storage_engine.h"

namespace backsort {

/// Configuration of one IoTDB-benchmark-style run (Section VI-A2): data is
/// generated per the configured delay distribution and sent batch by batch;
/// between batches, queries are issued so that the fraction of write
/// operations matches `write_percentage`; queries are basic time-range
/// scans over the neighborhood of the latest timestamp ("SELECT * FROM data
/// WHERE time > current - window").
struct WorkloadConfig {
  size_t total_points = 1'000'000;
  size_t batch_size = 500;  ///< the paper's tuned optimal batch size
  /// Fraction of operations that are writes, in (0, 1]. 1.0 = no queries.
  double write_percentage = 0.9;
  size_t sensor_count = 1;
  Timestamp query_window = 20'000;
  uint64_t seed = 42;
  /// Concurrent client threads, each driving a disjoint subset of sensors
  /// (clamped to sensor_count). With more than one client, queries and
  /// writes contend on the engine's global lock exactly as IoTDB clients
  /// do on the server.
  size_t client_threads = 1;
};

/// Client-side + server-side metrics of one run (paper Section VI-D).
struct WorkloadResult {
  /// Points returned per second of query execution time (client side).
  double query_throughput = 0.0;
  /// Points ingested per second of total test time (client side); the
  /// aggregate across all client threads, so it reflects engine-side
  /// contention — the metric the shard-scaling bench compares.
  double write_throughput = 0.0;
  /// Wall time of the whole test (client side "total test latency"), sec.
  double total_latency_sec = 0.0;
  /// Average flush pipeline time (server side), ms.
  double avg_flush_ms = 0.0;
  /// Average TVList sort time inside flush (server side), ms.
  double avg_sort_ms = 0.0;
  size_t queries_executed = 0;
  size_t points_queried = 0;
  size_t points_written = 0;
  size_t flush_count = 0;
  /// Per-query latency distribution (ms), client side.
  double query_p50_ms = 0.0;
  double query_p95_ms = 0.0;
  double query_p99_ms = 0.0;
};

/// Drives a StorageEngine through one configured workload.
class WorkloadRunner {
 public:
  WorkloadRunner(StorageEngine* engine, WorkloadConfig config)
      : engine_(engine), config_(config) {}

  /// Generates the arrival streams, runs the write/query mix to completion
  /// (all points written), and reports metrics. A trailing FlushAll is
  /// included in the total latency, mirroring the benchmark waiting for the
  /// server to settle.
  Status Run(const DelayDistribution& delay, WorkloadResult* result);

 private:
  StorageEngine* engine_;
  WorkloadConfig config_;
};

}  // namespace backsort

#endif  // BACKSORT_BENCHKIT_WORKLOAD_H_
