#include "benchkit/workload.h"

#include <algorithm>
#include <thread>

#include "common/stats.h"
#include "common/timer.h"
#include "disorder/series_generator.h"

namespace backsort {

namespace {

/// Per-client-thread accumulation, merged after join.
struct ClientStats {
  double query_seconds = 0.0;
  size_t queries = 0;
  size_t points_queried = 0;
  size_t points_written = 0;
  SampleSet query_latency_ms;
  Status status;
};

}  // namespace

Status WorkloadRunner::Run(const DelayDistribution& delay,
                           WorkloadResult* result) {
  *result = WorkloadResult{};
  Rng gen_rng(config_.seed);

  // Pre-generate one arrival stream per sensor so generation cost stays out
  // of the measured window (IoTDB-benchmark generates data before sending).
  const size_t sensors = std::max<size_t>(config_.sensor_count, 1);
  const size_t per_sensor = config_.total_points / sensors;
  std::vector<std::vector<TvPairDouble>> streams;
  streams.reserve(sensors);
  for (size_t s = 0; s < sensors; ++s) {
    streams.push_back(
        GenerateArrivalOrderedSeries<double>(per_sensor, delay, gen_rng));
  }
  std::vector<std::string> names(sensors);
  for (size_t s = 0; s < sensors; ++s) {
    names[s] = "root.sg.d0.s" + std::to_string(s);
  }

  const size_t threads =
      std::clamp<size_t>(config_.client_threads, 1, sensors);

  // One client drives the sensors with index % threads == tid.
  auto client = [&](size_t tid, ClientStats* stats) {
    Rng rng(config_.seed + 1000 + tid);
    std::vector<size_t> my_sensors;
    for (size_t s = tid; s < sensors; s += threads) my_sensors.push_back(s);
    std::vector<size_t> cursor(my_sensors.size(), 0);
    std::vector<Timestamp> latest(my_sensors.size(), 0);
    std::vector<TvPairDouble> batch;
    std::vector<TvPairDouble> query_out;
    size_t next = 0;
    size_t remaining = 0;
    for (size_t s : my_sensors) remaining += streams[s].size();

    while (remaining > 0) {
      const bool do_write = config_.write_percentage >= 1.0 ||
                            rng.NextDouble() < config_.write_percentage;
      if (do_write) {
        size_t k = next;
        for (size_t tries = 0; tries < my_sensors.size(); ++tries) {
          if (cursor[k] < streams[my_sensors[k]].size()) break;
          k = (k + 1) % my_sensors.size();
        }
        next = (k + 1) % my_sensors.size();
        const size_t s = my_sensors[k];
        const size_t n =
            std::min(config_.batch_size, streams[s].size() - cursor[k]);
        batch.assign(
            streams[s].begin() + static_cast<ptrdiff_t>(cursor[k]),
            streams[s].begin() + static_cast<ptrdiff_t>(cursor[k] + n));
        stats->status = engine_->WriteBatch(names[s], batch);
        if (!stats->status.ok()) return;
        for (const TvPairDouble& p : batch) {
          latest[k] = std::max(latest[k], p.t);
        }
        cursor[k] += n;
        remaining -= n;
        stats->points_written += n;
      } else {
        // Time-range query near the newest data of one of this client's
        // sensors; queries before any write return empty, as in the real
        // benchmark warmup.
        const size_t k = static_cast<size_t>(rng.NextBelow(my_sensors.size()));
        const Timestamp hi = latest[k];
        const Timestamp lo =
            hi > config_.query_window ? hi - config_.query_window : 0;
        WallTimer qt;
        stats->status = engine_->Query(names[my_sensors[k]], lo, hi,
                                       &query_out);
        if (!stats->status.ok()) return;
        const double elapsed = qt.ElapsedSeconds();
        stats->query_seconds += elapsed;
        stats->query_latency_ms.Add(elapsed * 1e3);
        ++stats->queries;
        stats->points_queried += query_out.size();
      }
    }
  };

  WallTimer total_timer;
  std::vector<ClientStats> stats(threads);
  if (threads == 1) {
    client(0, &stats[0]);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t tid = 0; tid < threads; ++tid) {
      pool.emplace_back(client, tid, &stats[tid]);
    }
    for (auto& t : pool) t.join();
  }
  for (const ClientStats& s : stats) {
    RETURN_NOT_OK(s.status);
  }

  RETURN_NOT_OK(engine_->FlushAll());
  result->total_latency_sec = total_timer.ElapsedSeconds();
  double query_seconds = 0.0;
  SampleSet all_latencies;
  for (ClientStats& s : stats) {
    query_seconds += s.query_seconds;
    result->queries_executed += s.queries;
    result->points_queried += s.points_queried;
    result->points_written += s.points_written;
    all_latencies.Merge(s.query_latency_ms);
  }
  if (query_seconds > 0.0) {
    result->query_throughput =
        static_cast<double>(result->points_queried) / query_seconds;
  }
  if (result->total_latency_sec > 0.0) {
    result->write_throughput =
        static_cast<double>(result->points_written) / result->total_latency_sec;
  }
  if (all_latencies.count() > 0) {
    result->query_p50_ms = all_latencies.Percentile(50);
    result->query_p95_ms = all_latencies.Percentile(95);
    result->query_p99_ms = all_latencies.Percentile(99);
  }
  const FlushMetrics metrics = engine_->GetFlushMetrics();
  result->avg_flush_ms = metrics.flush_ms.mean();
  result->avg_sort_ms = metrics.sort_ms.mean();
  result->flush_count = metrics.flush_ms.count();
  return Status::OK();
}

}  // namespace backsort
