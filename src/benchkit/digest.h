#ifndef BACKSORT_BENCHKIT_DIGEST_H_
#define BACKSORT_BENCHKIT_DIGEST_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "engine/storage_engine.h"

namespace backsort::bench {

/// FNV-1a basis / prime (64-bit), shared by every digest in the bench and
/// identity-test toolkit.
inline constexpr uint64_t kFnvBasis = 1469598103934665603ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

/// Folds `n` raw bytes into an FNV-1a digest (chainable via `h`).
inline uint64_t FnvBytes(const void* data, size_t n, uint64_t h = kFnvBasis) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// FNV-1a digest of one file's full contents; ~0ull when unreadable.
inline uint64_t FnvFile(const std::string& path, uint64_t h = kFnvBasis) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return ~0ull;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) h = FnvBytes(buf, n, h);
  std::fclose(f);
  return h;
}

/// Order-sensitive digest of one sensor's full query result: any lost,
/// duplicated, reordered or value-corrupted point changes it. `points`
/// (optional) accumulates the result size.
inline uint64_t QueryDigest(StorageEngine* engine, const std::string& sensor,
                            size_t* points = nullptr) {
  std::vector<TvPairDouble> out;
  if (!engine->Query(sensor, 0, INT64_MAX / 2, &out).ok()) return ~0ull;
  uint64_t h = kFnvBasis;
  auto mix = [&h](uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (i * 8)) & 0xff;
      h *= kFnvPrime;
    }
  };
  for (const TvPairDouble& p : out) {
    mix(static_cast<uint64_t>(p.t));
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(p.v));
    std::memcpy(&bits, &p.v, sizeof(bits));
    mix(bits);
  }
  if (points != nullptr) *points += out.size();
  return h;
}

}  // namespace backsort::bench

#endif  // BACKSORT_BENCHKIT_DIGEST_H_
