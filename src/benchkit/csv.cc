#include "benchkit/csv.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace backsort {

Status WriteCsv(const std::string& path,
                const std::vector<TvPairDouble>& points) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << "timestamp,value\n";
  char line[64];
  for (const TvPairDouble& p : points) {
    std::snprintf(line, sizeof(line), "%lld,%.17g\n",
                  static_cast<long long>(p.t), p.v);
    out << line;
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status ReadCsv(const std::string& path, std::vector<TvPairDouble>* points) {
  points->clear();
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Trim trailing CR from CRLF files.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (lineno == 1 && !line.empty() && !std::isdigit(line[0]) &&
        line[0] != '-' && line[0] != '+') {
      continue;  // header row
    }
    const size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected 'timestamp,value'");
    }
    errno = 0;
    char* end = nullptr;
    const long long t = std::strtoll(line.c_str(), &end, 10);
    if (end != line.c_str() + comma || errno == ERANGE) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": bad timestamp");
    }
    const char* value_begin = line.c_str() + comma + 1;
    const double v = std::strtod(value_begin, &end);
    if (end == value_begin || *end != '\0') {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": bad value");
    }
    points->push_back({static_cast<Timestamp>(t), v});
  }
  return Status::OK();
}

}  // namespace backsort
