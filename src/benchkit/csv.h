#ifndef BACKSORT_BENCHKIT_CSV_H_
#define BACKSORT_BENCHKIT_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace backsort {

/// CSV bridge for external datasets: the paper's real datasets (CitiBike
/// trips, Samsung sensor logs) are not redistributable, but users who hold
/// them can export `timestamp,value` rows and run every bench and example
/// on the genuine arrival streams.

/// Writes points as "timestamp,value" rows with a header line.
Status WriteCsv(const std::string& path,
                const std::vector<TvPairDouble>& points);

/// Reads "timestamp,value" rows. Skips the header if present, ignores
/// blank lines and '#' comments; any other malformed line fails with its
/// line number.
Status ReadCsv(const std::string& path, std::vector<TvPairDouble>* points);

}  // namespace backsort

#endif  // BACKSORT_BENCHKIT_CSV_H_
