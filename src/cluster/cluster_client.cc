#include "cluster/cluster_client.h"

#include "net/socket.h"

namespace backsort {

ClusterClient::ClusterClient(ClusterConfig config,
                             ClusterClientOptions options)
    : config_(std::move(config)),
      router_(config_),
      options_(options),
      clients_(config_.size()),
      down_until_ms_(config_.size(), 0) {}

Status ClusterClient::EnsureConnected(size_t node) {
  if (clients_[node] == nullptr) {
    clients_[node] = std::make_unique<BacksortClient>(options_.client);
  }
  if (clients_[node]->connected()) return Status::OK();
  const ClusterNodeSpec& spec = config_.nodes[node];
  return clients_[node]->Connect(spec.host, spec.port);
}

Status ClusterClient::WithRoute(
    const std::string& sensor,
    const std::function<Status(BacksortClient*)>& op) {
  if (config_.size() == 0) {
    return Status::InvalidArgument("cluster client has no nodes");
  }
  const size_t primary = router_.PrimaryFor(sensor);
  const size_t replica = router_.ReplicaFor(sensor);
  const size_t candidates[2] = {primary, replica};
  const size_t candidate_count = primary == replica ? 1 : 2;

  const int64_t now = MonotonicMillis();
  Status last = Status::IOError("no cluster node reachable");
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < candidate_count; ++i) {
      const size_t node = candidates[i];
      // First pass honors the down-cooldown; the second ignores it, so
      // every request still tries SOMETHING when all candidates are
      // cooling down (a cooldown must dampen retries, not answer them).
      if (pass == 0 && down_until_ms_[node] > now) continue;

      Status st = EnsureConnected(node);
      if (st.ok()) st = op(clients_[node].get());
      if (!IsFailoverError(st)) {
        down_until_ms_[node] = 0;
        if (node != primary) ++failovers_;
        return st;  // success, or a data error worth reporting verbatim
      }
      down_until_ms_[node] = now + options_.down_cooldown_ms;
      if (clients_[node] != nullptr) clients_[node]->Close();
      last = st;
    }
  }
  return last;
}

Status ClusterClient::WriteBatch(const std::string& sensor,
                                 const std::vector<TvPairDouble>& points) {
  return WithRoute(sensor, [&](BacksortClient* client) {
    return client->WriteBatch(sensor, points);
  });
}

Status ClusterClient::Query(const std::string& sensor, Timestamp t_min,
                            Timestamp t_max,
                            std::vector<TvPairDouble>* out) {
  return WithRoute(sensor, [&](BacksortClient* client) {
    return client->Query(sensor, t_min, t_max, out);
  });
}

Status ClusterClient::GetLatest(const std::string& sensor, TvPairDouble* out) {
  return WithRoute(sensor, [&](BacksortClient* client) {
    return client->GetLatest(sensor, out);
  });
}

Status ClusterClient::AggregateFast(const std::string& sensor,
                                    Timestamp t_min, Timestamp t_max,
                                    TsFileReader::RangeStats* stats,
                                    bool* used_fast_path) {
  return WithRoute(sensor, [&](BacksortClient* client) {
    return client->AggregateFast(sensor, t_min, t_max, stats, used_fast_path);
  });
}

Status ClusterClient::MetricsSnapshot(size_t node, std::string* exposition) {
  if (node >= config_.size()) {
    return Status::InvalidArgument("cluster node index out of range");
  }
  RETURN_NOT_OK(EnsureConnected(node));
  return clients_[node]->MetricsSnapshot(exposition);
}

}  // namespace backsort
