#ifndef BACKSORT_CLUSTER_CLUSTER_CONFIG_H_
#define BACKSORT_CLUSTER_CLUSTER_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace backsort {

/// One node of a static cluster map: a stable identifier (it keys the
/// consistent-hash ring and the replication cursor files, so it must
/// never be reused for a different machine) and the node's BSN1 address.
struct ClusterNodeSpec {
  std::string id;
  std::string host;
  uint16_t port = 0;
};

/// Static cluster membership, parsed from `--cluster <file|spec>`. The
/// map is fixed for the life of the process — there is no gossip or
/// dynamic membership; operators roll the cluster to change it
/// (docs/OPERATIONS.md "Running a cluster").
struct ClusterConfig {
  std::vector<ClusterNodeSpec> nodes;

  size_t size() const { return nodes.size(); }

  /// Index of the node with `id`, or npos when absent.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t IndexOf(const std::string& id) const;

  /// Parses a cluster spec. `spec` is either a path to an existing file
  /// (one entry per line, `#` comments and blank lines skipped) or an
  /// inline comma-separated list. Each entry is `host:port` or
  /// `id=host:port`; entries without an explicit id get `node0`,
  /// `node1`, ... by position. Fails on empty specs, malformed entries,
  /// out-of-range ports and duplicate ids.
  static Status Parse(const std::string& spec, ClusterConfig* out);
};

/// Parses one `[id=]host:port` entry (exposed for tests).
Status ParseClusterEntry(const std::string& entry, ClusterNodeSpec* out);

}  // namespace backsort

#endif  // BACKSORT_CLUSTER_CLUSTER_CONFIG_H_
