#include "cluster/node.h"

#include <utility>

namespace backsort {

namespace {

/// A multi-node map needs the ship log on before the engine opens; a
/// single node runs exactly like plain `bstool serve`.
EngineOptions WithReplicationLog(EngineOptions options, size_t cluster_size) {
  if (cluster_size > 1) options.replication_log = true;
  return options;
}

}  // namespace

ClusterNode::ClusterNode(ClusterConfig config, size_t node_index,
                         EngineOptions engine_options,
                         ServerOptions server_options,
                         ReplicatorOptions replicator_tuning)
    : config_(std::move(config)),
      index_(node_index),
      replicator_tuning_(std::move(replicator_tuning)),
      data_dir_(engine_options.data_dir),
      server_(WithReplicationLog(std::move(engine_options), config_.size()),
              std::move(server_options)) {
  server_.SetExtraMetricsExporter([this](MetricsRegistry* registry) {
    ExportClusterMetrics(metrics_.Snapshot(), /*base_labels=*/{}, registry);
  });
}

Status ClusterNode::Start() {
  if (index_ >= config_.size()) {
    return Status::InvalidArgument("cluster node index out of range");
  }
  RETURN_NOT_OK(server_.Start());
  if (config_.size() <= 1) return Status::OK();

  const ClusterRouter router(config_);
  const ClusterNodeSpec& follower =
      config_.nodes[router.FollowerOf(index_)];
  ReplicatorOptions options = replicator_tuning_;
  options.source_id = config_.nodes[index_].id;
  options.follower_host = follower.host;
  options.follower_port = follower.port;
  options.data_dir = data_dir_;
  options.shard_count = server_.engine()->shard_count();
  replicator_ = std::make_unique<Replicator>(std::move(options), &metrics_);
  Status started = replicator_->Start();
  if (!started.ok()) {
    server_.Stop();
    return started;
  }
  return Status::OK();
}

void ClusterNode::Stop() {
  server_.Stop();
  if (replicator_ != nullptr) replicator_->Stop();
}

}  // namespace backsort
