#ifndef BACKSORT_CLUSTER_REPLICATOR_H_
#define BACKSORT_CLUSTER_REPLICATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "cluster/cluster_metrics.h"
#include "common/status.h"
#include "net/client.h"

namespace backsort {

struct ReplicatorOptions {
  /// This node's cluster id — it names the ship stream follower-side
  /// (cursor file, frontier map), so it must be stable across restarts.
  std::string source_id;

  /// The follower receiving this node's writes (ClusterRouter::FollowerOf).
  std::string follower_host;
  uint16_t follower_port = 0;

  /// The source engine's data dir (where the ship log lives) and resolved
  /// shard count — both must match the engine being tailed.
  std::string data_dir;
  size_t shard_count = 0;

  /// Chunking budgets per ship RPC (see WalTailer::Options).
  size_t max_records = 2048;
  size_t max_bytes = 1u << 20;

  /// Idle sleep between polls when fully caught up.
  int poll_idle_ms = 20;

  /// Reconnect backoff: doubling from initial to max, jittered so the
  /// nodes of a restarted cluster do not dial each other in lockstep.
  int reconnect_initial_ms = 50;
  int reconnect_max_ms = 2'000;

  /// Once acked, closed ship segments behind the follower's cursor are
  /// deleted (the engine itself never deletes them). Tests disable this
  /// to inspect the log.
  bool purge_acked_segments = true;

  /// Wire client tuning for the replication connection.
  ClientOptions client;
};

/// Asynchronous WAL-shipping replication source: one background thread
/// that tails this node's ship log (WalTailer) and ships chunks to the
/// follower over kReplicateBatch, one chunk in flight at a time — so the
/// follower applies records in ship-log order and a single persisted
/// (segment, offset) cursor per shard captures exactly what it has.
///
/// Connection lifecycle: connect → kReplicationAck handshake for the
/// follower's persisted frontier → Seek the tailer there → poll/ship
/// loop. Any transport error abandons the connection and retries with
/// jittered doubling backoff; the handshake makes the resume exact, and
/// anything shipped-but-unacked is re-shipped and absorbed by the
/// follower's LWW apply. Durability note: replication is asynchronous —
/// a write is acknowledged to clients by the primary's WAL/ship-log,
/// not by the follower; the backlog gauge bounds what a failover can
/// lose (docs/OPERATIONS.md).
class Replicator {
 public:
  Replicator(ReplicatorOptions options, ClusterMetrics* metrics);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Spawns the shipping thread. Fails on misconfiguration only; the
  /// follower being down is a runtime condition the loop retries.
  Status Start();

  /// Stops the thread (interrupting any backoff/idle sleep) and joins.
  /// Idempotent.
  void Stop();

 private:
  void Run();

  /// One connection's lifetime: handshake, then poll/ship until an error
  /// or Stop. Returns when the connection is no longer usable.
  void ShipUntilError(BacksortClient* client);

  /// Deletes closed ship segments of `shard` wholly behind `acked`.
  void PurgeAcked(size_t shard, uint64_t acked_segment);

  /// Sleeps up to `ms`, returning early (false) when Stop was requested.
  bool SleepInterruptible(int ms);

  const ReplicatorOptions options_;
  ClusterMetrics* const metrics_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
  bool started_ = false;
};

}  // namespace backsort

#endif  // BACKSORT_CLUSTER_REPLICATOR_H_
