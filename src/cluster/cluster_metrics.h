#ifndef BACKSORT_CLUSTER_CLUSTER_METRICS_H_
#define BACKSORT_CLUSTER_CLUSTER_METRICS_H_

#include <atomic>
#include <cstdint>

#include "common/latency_histogram.h"
#include "common/metrics_registry.h"

namespace backsort {

/// Point-in-time copy of one node's replication-shipping counters.
struct ClusterMetricsSnapshot {
  uint64_t ship_chunks = 0;    ///< chunks accepted by the follower
  uint64_t ship_records = 0;   ///< records inside those chunks
  uint64_t ship_bytes = 0;     ///< encoded request-payload bytes shipped
  uint64_t acked_records = 0;  ///< records covered by a durable follower ack
  uint64_t ship_errors = 0;    ///< failed ship RPCs / tailer errors
  uint64_t reconnects = 0;     ///< follower (re)connect attempts after the
                               ///< first successful connection
  uint64_t backlog_bytes = 0;  ///< ship-log bytes not yet acked (gauge)
  HistogramSnapshot ship_rtt_ns;  ///< ship RPC round-trip, nanoseconds
};

/// Thread-safe counters recorded by the Replicator and exported into the
/// node's Prometheus exposition as the `backsort_cluster_*` families
/// (docs/METRICS.md).
class ClusterMetrics {
 public:
  std::atomic<uint64_t> ship_chunks{0};
  std::atomic<uint64_t> ship_records{0};
  std::atomic<uint64_t> ship_bytes{0};
  std::atomic<uint64_t> acked_records{0};
  std::atomic<uint64_t> ship_errors{0};
  std::atomic<uint64_t> reconnects{0};
  std::atomic<uint64_t> backlog_bytes{0};
  LatencyHistogram ship_rtt_ns;

  ClusterMetricsSnapshot Snapshot() const {
    ClusterMetricsSnapshot snap;
    snap.ship_chunks = ship_chunks.load(std::memory_order_relaxed);
    snap.ship_records = ship_records.load(std::memory_order_relaxed);
    snap.ship_bytes = ship_bytes.load(std::memory_order_relaxed);
    snap.acked_records = acked_records.load(std::memory_order_relaxed);
    snap.ship_errors = ship_errors.load(std::memory_order_relaxed);
    snap.reconnects = reconnects.load(std::memory_order_relaxed);
    snap.backlog_bytes = backlog_bytes.load(std::memory_order_relaxed);
    snap.ship_rtt_ns = ship_rtt_ns.Snapshot();
    return snap;
  }
};

/// Renders a snapshot as `backsort_cluster_*` registry samples — plugged
/// into BacksortServer::SetExtraMetricsExporter so replication health is
/// scraped from the same exposition as engine and net metrics.
void ExportClusterMetrics(const ClusterMetricsSnapshot& snapshot,
                          const MetricsRegistry::Labels& base_labels,
                          MetricsRegistry* registry);

}  // namespace backsort

#endif  // BACKSORT_CLUSTER_CLUSTER_METRICS_H_
