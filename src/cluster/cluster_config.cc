#include "cluster/cluster_config.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>

namespace backsort {

namespace {

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return std::string();
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

size_t ClusterConfig::IndexOf(const std::string& id) const {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].id == id) return i;
  }
  return npos;
}

Status ParseClusterEntry(const std::string& entry, ClusterNodeSpec* out) {
  std::string rest = entry;
  out->id.clear();
  // `id=host:port` — an '=' before the first ':' names the node. (A bare
  // '=' inside a hostname is not a thing we need to support.)
  const size_t eq = rest.find('=');
  if (eq != std::string::npos && eq < rest.find(':')) {
    out->id = Trim(rest.substr(0, eq));
    if (out->id.empty()) {
      return Status::InvalidArgument("empty node id in cluster entry: " +
                                     entry);
    }
    rest = rest.substr(eq + 1);
  }
  const size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    return Status::InvalidArgument("cluster entry is not host:port: " + entry);
  }
  out->host = Trim(rest.substr(0, colon));
  const std::string port_str = Trim(rest.substr(colon + 1));
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
  if (port_str.empty() || end == nullptr || *end != '\0' || port == 0 ||
      port > 65535) {
    return Status::InvalidArgument("invalid port in cluster entry: " + entry);
  }
  out->port = static_cast<uint16_t>(port);
  return Status::OK();
}

Status ClusterConfig::Parse(const std::string& spec, ClusterConfig* out) {
  out->nodes.clear();
  std::vector<std::string> entries;
  std::error_code ec;
  if (std::filesystem::is_regular_file(spec, ec)) {
    std::ifstream file(spec);
    if (!file) return Status::IOError("cannot read cluster file: " + spec);
    std::string line;
    while (std::getline(file, line)) {
      const size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      line = Trim(line);
      if (!line.empty()) entries.push_back(line);
    }
  } else {
    size_t pos = 0;
    while (pos <= spec.size()) {
      const size_t comma = spec.find(',', pos);
      const std::string entry = Trim(
          spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                      : comma - pos));
      if (!entry.empty()) entries.push_back(entry);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (entries.empty()) {
    return Status::InvalidArgument("empty cluster spec: " + spec);
  }

  std::set<std::string> seen;
  for (size_t i = 0; i < entries.size(); ++i) {
    ClusterNodeSpec node;
    RETURN_NOT_OK(ParseClusterEntry(entries[i], &node));
    if (node.id.empty()) node.id = "node" + std::to_string(i);
    if (!seen.insert(node.id).second) {
      return Status::InvalidArgument("duplicate node id in cluster spec: " +
                                     node.id);
    }
    out->nodes.push_back(std::move(node));
  }
  return Status::OK();
}

}  // namespace backsort
