#include "cluster/router.h"

#include <algorithm>

namespace backsort {

uint64_t ClusterHash(const std::string& key) {
  // FNV-1a, 64-bit.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

// Murmur3 fmix64. FNV-1a of short keys barely stirs the high bits, and
// lower_bound placement on the ring is dominated by exactly those bits —
// without this finalizer a 3-node ring gave one node <9% of the keyspace.
// Applied identically to vnode points and sensor lookups, it is a fixed
// bijection of the ring coordinate space, so routing stays deterministic
// across binaries and the consistent-hashing property is untouched.
uint64_t Fmix64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

ClusterRouter::ClusterRouter(const ClusterConfig& config, size_t vnodes)
    : node_count_(config.size()) {
  ring_.reserve(node_count_ * vnodes);
  for (size_t n = 0; n < node_count_; ++n) {
    for (size_t v = 0; v < vnodes; ++v) {
      ring_.push_back(RingPoint{
          Fmix64(ClusterHash(config.nodes[n].id + "#" + std::to_string(v))),
          n});
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

size_t ClusterRouter::PrimaryFor(const std::string& sensor) const {
  if (node_count_ <= 1) return 0;
  const uint64_t h = Fmix64(ClusterHash(sensor));
  // First vnode clockwise of the sensor's hash; wrap to the start.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const RingPoint& p, uint64_t value) { return p.hash < value; });
  if (it == ring_.end()) it = ring_.begin();
  return it->node;
}

}  // namespace backsort
