#ifndef BACKSORT_CLUSTER_NODE_H_
#define BACKSORT_CLUSTER_NODE_H_

#include <memory>
#include <string>

#include "cluster/cluster_config.h"
#include "cluster/cluster_metrics.h"
#include "cluster/replicator.h"
#include "cluster/router.h"
#include "common/status.h"
#include "net/server.h"

namespace backsort {

/// One cluster member: a BacksortServer plus, when the map has more than
/// one node, the Replicator shipping this node's writes to its ring
/// follower. Turning the engine's replication ship log on, pointing the
/// replicator at FollowerOf(this), and merging the `backsort_cluster_*`
/// metrics into the server's exposition all happen here — the net and
/// engine layers stay cluster-agnostic.
///
/// The engine's resolved shard count keys the ship streams and the
/// follower's cursors, so it must stay stable across restarts of a
/// cluster member (docs/OPERATIONS.md pins this).
class ClusterNode {
 public:
  /// `node_index` is this process's entry in `config`. The engine options
  /// gain replication_log = true when the cluster has company.
  ClusterNode(ClusterConfig config, size_t node_index,
              EngineOptions engine_options, ServerOptions server_options,
              ReplicatorOptions replicator_tuning = ReplicatorOptions());

  ~ClusterNode() { Stop(); }

  /// Starts the server, then (multi-node maps) the replication shipper.
  Status Start();

  /// Stops the server first — in-flight client writes drain into the WAL
  /// and ship log — then the shipper. Idempotent. Stopping does NOT wait
  /// for the follower to catch up; replication is asynchronous and the
  /// handshake resumes the stream on the next start.
  void Stop();

  BacksortServer* server() { return &server_; }
  uint16_t port() const { return server_.port(); }
  const std::string& id() const { return config_.nodes[index_].id; }
  ClusterMetrics* metrics() { return &metrics_; }

 private:
  ClusterConfig config_;
  size_t index_;
  ReplicatorOptions replicator_tuning_;
  std::string data_dir_;
  ClusterMetrics metrics_;
  BacksortServer server_;
  std::unique_ptr<Replicator> replicator_;
};

}  // namespace backsort

#endif  // BACKSORT_CLUSTER_NODE_H_
