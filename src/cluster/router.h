#ifndef BACKSORT_CLUSTER_ROUTER_H_
#define BACKSORT_CLUSTER_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster_config.h"

namespace backsort {

/// FNV-1a 64-bit over the sensor name — the cluster's placement hash.
/// Deliberately simple and specified here so every client and server
/// binary, of any version, routes a sensor to the same node (std::hash
/// would not guarantee that across processes, let alone compilers).
uint64_t ClusterHash(const std::string& key);

/// Consistent-hash sensor routing over a static cluster map. Each node
/// projects `vnodes` points onto a 64-bit ring (hashed from `id + "#" + i`,
/// so placement follows node IDENTITY, not list order); a sensor's primary
/// is the first node clockwise of its hash. With dozens of vnodes per node
/// the keyspace splits near-evenly, and removing a node from the map moves
/// only that node's arcs — the consistent-hashing property the cluster
/// relies on for bounded resharding.
///
/// The replica of a sensor is the ring-successor NODE of its primary
/// (FollowerOf = (primary + 1) % size by node index): the same node-level
/// pairing that replication shipping uses, so a failover client reading
/// the replica sees exactly what the primary's follower received.
class ClusterRouter {
 public:
  explicit ClusterRouter(const ClusterConfig& config, size_t vnodes = 64);

  size_t size() const { return node_count_; }

  /// Node index owning `sensor`.
  size_t PrimaryFor(const std::string& sensor) const;

  /// Node index holding `node`'s replicated data (its ship target).
  /// Identity when the cluster has one node.
  size_t FollowerOf(size_t node) const {
    return node_count_ <= 1 ? node : (node + 1) % node_count_;
  }

  /// Node index of the replica of `sensor` — FollowerOf(PrimaryFor).
  size_t ReplicaFor(const std::string& sensor) const {
    return FollowerOf(PrimaryFor(sensor));
  }

 private:
  struct RingPoint {
    uint64_t hash;
    size_t node;
    bool operator<(const RingPoint& o) const {
      // Node index tiebreak keeps the ring deterministic under (vanishing
      // but possible) vnode hash collisions.
      return hash != o.hash ? hash < o.hash : node < o.node;
    }
  };

  std::vector<RingPoint> ring_;
  size_t node_count_ = 0;
};

}  // namespace backsort

#endif  // BACKSORT_CLUSTER_ROUTER_H_
