#include "cluster/replicator.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "engine/wal_tailer.h"
#include "net/protocol.h"

namespace backsort {

Replicator::Replicator(ReplicatorOptions options, ClusterMetrics* metrics)
    : options_(std::move(options)), metrics_(metrics) {}

Replicator::~Replicator() { Stop(); }

Status Replicator::Start() {
  if (options_.source_id.empty()) {
    return Status::InvalidArgument("replicator needs a source id");
  }
  if (options_.follower_host.empty() || options_.follower_port == 0) {
    return Status::InvalidArgument("replicator needs a follower address");
  }
  if (options_.shard_count == 0) {
    return Status::InvalidArgument("replicator needs the engine shard count");
  }
  if (started_) return Status::InvalidArgument("replicator already started");
  started_ = true;
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void Replicator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool Replicator::SleepInterruptible(int ms) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(ms), [this] { return stop_; });
  return !stop_;
}

void Replicator::Run() {
  Rng rng(static_cast<uint64_t>(
              std::chrono::steady_clock::now().time_since_epoch().count()) ^
          reinterpret_cast<uintptr_t>(this));
  int backoff_ms = options_.reconnect_initial_ms;
  bool ever_connected = false;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
    }
    BacksortClient client(options_.client);
    const Status connected =
        client.Connect(options_.follower_host, options_.follower_port);
    if (connected.ok()) {
      if (ever_connected) {
        metrics_->reconnects.fetch_add(1, std::memory_order_relaxed);
      }
      ever_connected = true;
      backoff_ms = options_.reconnect_initial_ms;
      ShipUntilError(&client);
    }
    // Jittered doubling backoff before redialing, so the nodes of a
    // restarted cluster spread their reconnect storms.
    const int jittered = backoff_ms / 2 +
                         static_cast<int>(rng.NextBelow(
                             static_cast<uint64_t>(backoff_ms) + 1));
    if (!SleepInterruptible(jittered)) return;
    backoff_ms = std::min(backoff_ms * 2, options_.reconnect_max_ms);
  }
}

void Replicator::ShipUntilError(BacksortClient* client) {
  // Handshake: resume exactly where the follower's durable cursor stands.
  ShipFrontier frontier;
  if (!client->FetchReplicationCursor(options_.source_id, &frontier).ok()) {
    metrics_->ship_errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  WalTailer::Options tail_options;
  tail_options.max_records = options_.max_records;
  tail_options.max_bytes = options_.max_bytes;
  WalTailer tailer(options_.data_dir, options_.shard_count, tail_options);
  tailer.Seek(frontier);

  ShipChunk chunk;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
    }
    bool produced = false;
    if (const Status polled = tailer.Poll(&chunk, &produced); !polled.ok()) {
      // Real ship-log damage or a filesystem error — count it, then back
      // off through the reconnect path rather than spinning on the fault.
      metrics_->ship_errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (!produced) {
      metrics_->backlog_bytes.store(tailer.BacklogBytes(),
                                    std::memory_order_relaxed);
      if (!SleepInterruptible(options_.poll_idle_ms)) return;
      continue;
    }

    // Regroup the chunk's flat record stream into consecutive same-sensor
    // runs — order-preserving, so the follower's apply keeps per-sensor
    // arrival order and replayed chunks are LWW-idempotent.
    ReplicateBatchRequest request;
    request.source_id = options_.source_id;
    request.shard = chunk.shard;
    request.end = chunk.end;
    for (const WalRecord& record : chunk.records) {
      if (request.groups.empty() ||
          request.groups.back().sensor != record.sensor) {
        request.groups.push_back(WriteBatchRequest{record.sensor, {}});
      }
      request.groups.back().points.push_back(TvPairDouble{record.t, record.v});
    }

    WallTimer rtt;
    ShipCursor acked;
    size_t wire_bytes = 0;
    if (!client->ReplicateChunk(request, &acked, &wire_bytes).ok()) {
      metrics_->ship_errors.fetch_add(1, std::memory_order_relaxed);
      return;  // reconnect; the handshake re-seeks past anything applied
    }
    metrics_->ship_rtt_ns.Record(static_cast<uint64_t>(rtt.ElapsedNanos()));
    metrics_->ship_chunks.fetch_add(1, std::memory_order_relaxed);
    metrics_->ship_records.fetch_add(chunk.records.size(),
                                     std::memory_order_relaxed);
    metrics_->ship_bytes.fetch_add(wire_bytes, std::memory_order_relaxed);
    if (acked == chunk.end) {
      metrics_->acked_records.fetch_add(chunk.records.size(),
                                        std::memory_order_relaxed);
    }
    metrics_->backlog_bytes.store(tailer.BacklogBytes(),
                                  std::memory_order_relaxed);
    if (options_.purge_acked_segments) {
      PurgeAcked(chunk.shard, acked.segment);
    }
  }
}

void Replicator::PurgeAcked(size_t shard, uint64_t acked_segment) {
  // Segments strictly below the acked cursor's segment are fully durable
  // follower-side (the cursor only advances past complete frames of
  // earlier segments) — safe to delete. The acked segment itself stays;
  // it may still be the open one.
  std::error_code ec;
  std::filesystem::directory_iterator it(options_.data_dir, ec);
  if (ec) return;
  std::vector<std::string> doomed;
  for (const auto& entry : it) {
    size_t file_shard = 0, file_seq = 0;
    if (ParseShipSegmentName(entry.path().filename().string(), &file_shard,
                             &file_seq) &&
        file_shard == shard && file_seq < acked_segment) {
      doomed.push_back(entry.path().string());
    }
  }
  for (const std::string& path : doomed) {
    std::filesystem::remove(path, ec);
  }
}

}  // namespace backsort
