#ifndef BACKSORT_CLUSTER_CLUSTER_CLIENT_H_
#define BACKSORT_CLUSTER_CLUSTER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/router.h"
#include "common/status.h"
#include "net/client.h"

namespace backsort {

struct ClusterClientOptions {
  /// Per-connection wire client tuning.
  ClientOptions client;

  /// After a connect/transport failure a node is skipped for this long
  /// (unless it is the only candidate left), so a dead primary costs one
  /// timeout, not one per request.
  int down_cooldown_ms = 1'000;
};

/// Routing client over a static cluster: each operation hashes its sensor
/// through the ClusterRouter, runs against the primary, and on a
/// connect/transport failure (IOError / Unavailable-after-retries — NOT
/// data errors like NotFound, which are answers) retries once against the
/// sensor's replica, i.e. the node the primary's replication ships to.
///
/// Failover semantics are those of asynchronous replication: reads served
/// by the replica may trail the primary by the replication lag, and a
/// WRITE applied on the replica during failover lands in the replica's
/// own dataset — when the primary returns it does not absorb that write
/// (a known divergence window, docs/OPERATIONS.md). Per-sensor LWW makes
/// replayed/duplicated points harmless; lost-primary tails are bounded by
/// backsort_cluster_backlog_bytes.
///
/// Lazily connects one BacksortClient per node. Not thread-safe — one
/// ClusterClient per thread, like BacksortClient.
class ClusterClient {
 public:
  explicit ClusterClient(ClusterConfig config,
                         ClusterClientOptions options = ClusterClientOptions());

  const ClusterConfig& config() const { return config_; }
  const ClusterRouter& router() const { return router_; }

  Status WriteBatch(const std::string& sensor,
                    const std::vector<TvPairDouble>& points);
  Status Query(const std::string& sensor, Timestamp t_min, Timestamp t_max,
               std::vector<TvPairDouble>* out);
  Status GetLatest(const std::string& sensor, TvPairDouble* out);
  Status AggregateFast(const std::string& sensor, Timestamp t_min,
                       Timestamp t_max, TsFileReader::RangeStats* stats,
                       bool* used_fast_path = nullptr);

  /// Fetches node `node`'s metrics exposition (no routing — the caller
  /// picks the node).
  Status MetricsSnapshot(size_t node, std::string* exposition);

  /// Operations that fell over to the replica after a primary failure.
  uint64_t failovers() const { return failovers_; }

 private:
  /// True for failures that mean "node unreachable/unusable", where the
  /// replica may hold the answer. Data errors pass through verbatim.
  static bool IsFailoverError(const Status& st) {
    return st.IsIOError() || st.IsUnavailable();
  }

  /// Runs `op` against the sensor's primary, falling over to its replica
  /// on failover errors. Applies the down-cooldown bookkeeping.
  Status WithRoute(const std::string& sensor,
                   const std::function<Status(BacksortClient*)>& op);

  /// Connects node `node`'s client if needed.
  Status EnsureConnected(size_t node);

  ClusterConfig config_;
  ClusterRouter router_;
  ClusterClientOptions options_;
  std::vector<std::unique_ptr<BacksortClient>> clients_;
  /// MonotonicMillis deadline before which the node is skipped (0 = up).
  std::vector<int64_t> down_until_ms_;
  uint64_t failovers_ = 0;
};

}  // namespace backsort

#endif  // BACKSORT_CLUSTER_CLUSTER_CLIENT_H_
