#include "cluster/cluster_metrics.h"

namespace backsort {

void ExportClusterMetrics(const ClusterMetricsSnapshot& snapshot,
                          const MetricsRegistry::Labels& base_labels,
                          MetricsRegistry* registry) {
  registry->Counter("backsort_cluster_ship_chunks_total",
                    "Replication chunks accepted by the follower.",
                    base_labels, static_cast<double>(snapshot.ship_chunks));
  registry->Counter("backsort_cluster_ship_records_total",
                    "Points shipped to the follower inside accepted chunks.",
                    base_labels, static_cast<double>(snapshot.ship_records));
  registry->Counter("backsort_cluster_ship_bytes_total",
                    "Encoded replication request-payload bytes shipped.",
                    base_labels, static_cast<double>(snapshot.ship_bytes));
  registry->Counter(
      "backsort_cluster_acked_records_total",
      "Points covered by a follower ack whose cursor reached the chunk end "
      "(durably applied and resumable).",
      base_labels, static_cast<double>(snapshot.acked_records));
  registry->Counter("backsort_cluster_ship_errors_total",
                    "Failed ship RPCs and ship-log read errors.", base_labels,
                    static_cast<double>(snapshot.ship_errors));
  registry->Counter(
      "backsort_cluster_reconnects_total",
      "Follower (re)connection attempts after the first established "
      "replication stream.",
      base_labels, static_cast<double>(snapshot.reconnects));
  registry->Gauge(
      "backsort_cluster_backlog_bytes",
      "Ship-log bytes between the acknowledged frontier and the end of the "
      "log — the replication lag in bytes.",
      base_labels, static_cast<double>(snapshot.backlog_bytes));
  registry->Summary(
      "backsort_cluster_ship_rtt_seconds",
      "Ship RPC round-trip in seconds (encode to follower ack); "
      "quantile=\"1\" is the observed max.",
      base_labels, snapshot.ship_rtt_ns, 1e-9);
}

}  // namespace backsort
