#ifndef BACKSORT_COMMON_RNG_H_
#define BACKSORT_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace backsort {

/// Deterministic, fast pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. All experiments in this repository use this generator so that
/// every workload is reproducible from its seed, independent of the standard
/// library implementation.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 to spread a single word into the 4-word state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
    has_gauss_ = false;
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n) {
    // Lemire's multiply-shift rejection method would be overkill here; the
    // plain modulo bias is negligible for the ranges used in experiments,
    // but we still debias for small n via rejection on the top range.
    uint64_t threshold = (0 - n) % n;
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Marsaglia polar method (cached spare value).
  double NextGaussian() {
    if (has_gauss_) {
      has_gauss_ = false;
      return gauss_;
    }
    double u, v, s;
    do {
      u = 2.0 * NextDouble() - 1.0;
      v = 2.0 * NextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    gauss_ = v * mul;
    has_gauss_ = true;
    return u * mul;
  }

  /// Exponential with rate lambda (> 0).
  double NextExponential(double lambda) {
    double u;
    do {
      u = NextDouble();
    } while (u <= 0.0);
    return -std::log(u) / lambda;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace backsort

#endif  // BACKSORT_COMMON_RNG_H_
