#include "common/metrics_registry.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

namespace backsort {

namespace {

/// Prometheus float rendering: enough digits to round-trip, special
/// spellings for NaN/Inf.
std::string FormatValue(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string EscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

MetricsRegistry::Family* MetricsRegistry::FamilyFor(const std::string& name,
                                                    const std::string& help,
                                                    const std::string& type) {
  auto it = family_index_.find(name);
  if (it != family_index_.end()) return &families_[it->second];
  family_index_[name] = families_.size();
  families_.push_back(Family{name, help, type, {}});
  return &families_.back();
}

void MetricsRegistry::AddSample(Family* family, const std::string& sample_name,
                                const Labels& labels, double value) {
  std::string line = sample_name;
  if (!labels.empty()) {
    line += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) line += ',';
      first = false;
      line += k;
      line += "=\"";
      line += EscapeLabelValue(v);
      line += '"';
    }
    line += '}';
  }
  line += ' ';
  line += FormatValue(value);
  family->lines.push_back(std::move(line));
}

void MetricsRegistry::Gauge(const std::string& name, const std::string& help,
                            const Labels& labels, double value) {
  AddSample(FamilyFor(name, help, "gauge"), name, labels, value);
}

void MetricsRegistry::Counter(const std::string& name, const std::string& help,
                              const Labels& labels, double value) {
  AddSample(FamilyFor(name, help, "counter"), name, labels, value);
}

void MetricsRegistry::Summary(const std::string& name, const std::string& help,
                              const Labels& labels,
                              const HistogramSnapshot& snapshot, double scale) {
  static constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 1.0};
  Family* family = FamilyFor(name, help, "summary");
  for (double q : kQuantiles) {
    Labels with_quantile = labels;
    with_quantile.emplace_back("quantile", FormatValue(q));
    const double v = snapshot.count == 0
                         ? std::nan("")
                         : snapshot.ValueAtQuantile(q) * scale;
    AddSample(family, name, with_quantile, v);
  }
  AddSample(family, name + "_sum", labels,
            static_cast<double>(snapshot.sum) * scale);
  AddSample(family, name + "_count", labels,
            static_cast<double>(snapshot.count));
}

void MetricsRegistry::Comment(const std::string& text) {
  comments_.push_back("# " + text);
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::ostringstream out;
  for (const Family& f : families_) {
    out << "# HELP " << f.name << ' ' << EscapeHelp(f.help) << '\n';
    out << "# TYPE " << f.name << ' ' << f.type << '\n';
    for (const std::string& line : f.lines) out << line << '\n';
  }
  for (const std::string& c : comments_) out << c << '\n';
  return out.str();
}

Status MetricsRegistry::WriteFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open metrics file for write: " + tmp);
  }
  const std::string text = RenderPrometheus();
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != text.size() || !close_ok) {
    return Status::IOError("short write to metrics file: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("cannot publish metrics file " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

void ExportEngineMetrics(const EngineMetricsSnapshot& snapshot,
                         const MetricsRegistry::Labels& base_labels,
                         bool include_traces, MetricsRegistry* registry) {
  constexpr double kNsToSec = 1e-9;
  constexpr double kNsToMs = 1e-6;
  constexpr double kMsToSec = 1e-3;

  const struct {
    const char* stage;
    const HistogramSnapshot& hist;
  } stages[] = {
      {"enqueue", snapshot.stages.enqueue},
      {"batch_apply", snapshot.stages.batch_apply},
      {"queue_wait", snapshot.stages.queue_wait},
      {"sort", snapshot.stages.sort},
      {"sort_job", snapshot.stages.sort_job},
      {"encode", snapshot.stages.encode},
      {"seal", snapshot.stages.seal},
      {"flush", snapshot.stages.flush},
  };
  for (const auto& s : stages) {
    MetricsRegistry::Labels labels = base_labels;
    labels.emplace_back("stage", s.stage);
    registry->Summary(
        "backsort_stage_duration_seconds",
        "Write-path stage latency in seconds (stages: enqueue, batch_apply, "
        "queue_wait, sort, sort_job, encode, seal, flush); quantile=\"1\" is "
        "the observed max.",
        labels, s.hist, kNsToSec);
  }

  const struct {
    const char* stage;
    const HistogramSnapshot& hist;
  } query_stages[] = {
      {"snapshot", snapshot.query_stages.snapshot},
      {"prune", snapshot.query_stages.prune},
      {"read", snapshot.query_stages.read},
      {"merge", snapshot.query_stages.merge},
  };
  for (const auto& s : query_stages) {
    MetricsRegistry::Labels labels = base_labels;
    labels.emplace_back("stage", s.stage);
    registry->Summary(
        "backsort_query_stage_duration_seconds",
        "Read-path stage latency in seconds (stages: snapshot, prune, read, "
        "merge; only snapshot holds the shard lock); quantile=\"1\" is the "
        "observed max.",
        labels, s.hist, kNsToSec);
  }

  const struct {
    const char* stage;
    const HistogramSnapshot& hist;
  } agg_stages[] = {
      {"plan", snapshot.agg_stages.plan},
      {"stats", snapshot.agg_stages.stats},
      {"decode", snapshot.agg_stages.decode},
      {"merge", snapshot.agg_stages.merge},
  };
  for (const auto& s : agg_stages) {
    MetricsRegistry::Labels labels = base_labels;
    labels.emplace_back("stage", s.stage);
    registry->Summary(
        "backsort_agg_stage_duration_seconds",
        "Aggregation-path stage latency in seconds (stages: plan, stats, "
        "decode, merge; only plan holds the shard lock); quantile=\"1\" is "
        "the observed max.",
        labels, s.hist, kNsToSec);
  }

  registry->Counter("backsort_agg_requests_total",
                    "AggregateFast calls served since the engine opened.",
                    base_labels, static_cast<double>(snapshot.agg_requests));
  registry->Counter(
      "backsort_agg_stats_hits_total",
      "Chunks answered from footer statistics alone (tier 1, no decode).",
      base_labels, static_cast<double>(snapshot.agg_stats_hits));
  registry->Counter(
      "backsort_agg_stats_misses_total",
      "Aggregation sources that needed a decoding tier: partially covered "
      "or stat-less chunks (tier 2) plus calls routed through the exact "
      "merge fallback (tier 3).",
      base_labels, static_cast<double>(snapshot.agg_stats_misses));

  const struct {
    const char* stage;
    const HistogramSnapshot& hist;
  } compaction_stages[] = {
      {"plan", snapshot.compaction_stages.plan},
      {"merge", snapshot.compaction_stages.merge},
      {"publish", snapshot.compaction_stages.publish},
  };
  for (const auto& s : compaction_stages) {
    MetricsRegistry::Labels labels = base_labels;
    labels.emplace_back("stage", s.stage);
    registry->Summary(
        "backsort_compaction_stage_duration_seconds",
        "Compaction stage latency in seconds (stages: plan, merge, publish; "
        "only publish holds shard locks); quantile=\"1\" is the observed max.",
        labels, s.hist, kNsToSec);
  }

  registry->Counter(
      "backsort_engine_compaction_jobs_total",
      "Compaction merges completed (one output file swapped in each).",
      base_labels, static_cast<double>(snapshot.compaction_jobs));
  registry->Counter(
      "backsort_engine_compaction_failures_total",
      "Compaction merges that failed and left the registry unchanged.",
      base_labels, static_cast<double>(snapshot.compaction_failures));
  registry->Counter(
      "backsort_engine_compaction_input_files_total",
      "Sealed files consumed (merged away) by completed compactions.",
      base_labels, static_cast<double>(snapshot.compaction_input_files));
  registry->Counter(
      "backsort_engine_compaction_output_bytes_total",
      "Bytes written into compaction output files (post-merge sizes).",
      base_labels, static_cast<double>(snapshot.compaction_output_bytes));

  registry->Counter(
      "backsort_engine_batch_writes_total",
      "Batched write calls applied via the group-commit ingest path.",
      base_labels, static_cast<double>(snapshot.batch_writes));
  registry->Counter("backsort_engine_batch_points_total",
                    "Points ingested via the batched write path.",
                    base_labels, static_cast<double>(snapshot.batch_points));

  registry->Counter("backsort_queries_total",
                    "Range queries served since the engine opened.",
                    base_labels, static_cast<double>(snapshot.queries));
  registry->Counter(
      "backsort_query_files_pruned_total",
      "Sealed files skipped by footer time-range pruning, all queries.",
      base_labels, static_cast<double>(snapshot.query_files_pruned));
  registry->Counter(
      "backsort_query_files_opened_total",
      "Sealed files that contributed a run to a query (disk or cache), all "
      "queries.",
      base_labels, static_cast<double>(snapshot.query_files_opened));

  registry->Counter("backsort_chunk_cache_hits_total",
                    "Decoded-chunk lookups served from the chunk cache.",
                    base_labels, static_cast<double>(snapshot.cache.hits));
  registry->Counter("backsort_chunk_cache_misses_total",
                    "Decoded-chunk lookups that went to disk.", base_labels,
                    static_cast<double>(snapshot.cache.misses));
  registry->Counter(
      "backsort_chunk_cache_evictions_total",
      "Chunk-cache entries evicted to stay under capacity.", base_labels,
      static_cast<double>(snapshot.cache.evictions));
  registry->Counter(
      "backsort_chunk_cache_footer_hits_total",
      "Footer/index lookups served from the chunk cache.", base_labels,
      static_cast<double>(snapshot.cache.footer_hits));
  registry->Counter("backsort_chunk_cache_footer_misses_total",
                    "Footer/index lookups that read the file.", base_labels,
                    static_cast<double>(snapshot.cache.footer_misses));
  registry->Gauge("backsort_chunk_cache_bytes",
                  "Resident chunk-cache bytes (chunks + footers).",
                  base_labels, static_cast<double>(snapshot.cache.bytes));
  registry->Gauge("backsort_chunk_cache_entries",
                  "Resident chunk-cache entries (chunks + footers).",
                  base_labels, static_cast<double>(snapshot.cache.entries));
  registry->Gauge(
      "backsort_chunk_cache_capacity_bytes",
      "Configured chunk-cache capacity in bytes (0 = cache disabled).",
      base_labels, static_cast<double>(snapshot.cache.capacity_bytes));

  registry->Gauge("backsort_shard_count", "Engine shards.", base_labels,
                  static_cast<double>(snapshot.shards.size()));
  registry->Gauge("backsort_sealed_files",
                  "Distinct sealed TsFiles across the engine.", base_labels,
                  static_cast<double>(snapshot.sealed_files));
  registry->Gauge("backsort_working_points",
                  "Points buffered in working memtables, all shards.",
                  base_labels,
                  static_cast<double>(snapshot.total_working_points()));
  registry->Gauge("backsort_working_bytes",
                  "Approximate heap bytes of working memtables, all shards.",
                  base_labels,
                  static_cast<double>(snapshot.total_working_bytes()));
  registry->Gauge("backsort_queued_flushes",
                  "Sealed memtables waiting in flush queues, all shards.",
                  base_labels,
                  static_cast<double>(snapshot.total_queued_flushes()));
  registry->Counter("backsort_flushes_total",
                    "Flushes completed since the engine opened.", base_labels,
                    static_cast<double>(snapshot.total_completed_flushes()));

  for (const ShardMetricsSnapshot& shard : snapshot.shards) {
    MetricsRegistry::Labels labels = base_labels;
    labels.emplace_back("shard", std::to_string(shard.shard_id));
    registry->Gauge("backsort_shard_working_points",
                    "Points buffered in one shard's working memtables.",
                    labels, static_cast<double>(shard.working_points));
    registry->Gauge("backsort_shard_working_bytes",
                    "Approximate heap bytes of one shard's working memtables.",
                    labels, static_cast<double>(shard.working_bytes));
    registry->Gauge("backsort_shard_queued_flushes",
                    "Sealed memtables waiting in one shard's flush queue.",
                    labels, static_cast<double>(shard.queued_flushes));
    registry->Gauge(
        "backsort_shard_flushing_tables",
        "Sealed memtables of one shard not yet fully on disk.", labels,
        static_cast<double>(shard.flushing_tables));
    registry->Gauge("backsort_shard_sealed_files",
                    "Sealed TsFiles one shard consults at query time.", labels,
                    static_cast<double>(shard.sealed_files));
    registry->Counter("backsort_shard_flushes_total",
                      "Flushes one shard completed since the engine opened.",
                      labels, static_cast<double>(shard.completed_flushes));
    registry->Gauge("backsort_shard_flush_mean_seconds",
                    "Mean whole-pipeline flush time of one shard, seconds.",
                    labels, shard.flush.flush_ms.mean() * kMsToSec);
    registry->Gauge("backsort_shard_sort_mean_seconds",
                    "Mean in-flush sort time of one shard, seconds.", labels,
                    shard.flush.sort_ms.mean() * kMsToSec);
  }

  if (!include_traces) return;
  for (const ShardMetricsSnapshot& shard : snapshot.shards) {
    for (const FlushTrace& t : shard.recent_traces) {
      char buf[256];
      std::snprintf(
          buf, sizeof(buf),
          "flush-trace shard=%zu seq=%llu kind=%s points=%zu seal_ms=%.3f "
          "queue_wait_ms=%.3f sort_ms=%.3f encode_ms=%.3f fsync_ms=%.3f "
          "publish_ms=%.3f pipeline_ms=%.3f",
          t.shard_id, static_cast<unsigned long long>(t.seq),
          t.sequence ? "seq" : "unseq", t.points,
          static_cast<double>(t.seal_ns) * kNsToMs,
          static_cast<double>(t.queue_wait_ns()) * kNsToMs,
          static_cast<double>(t.sort_ns) * kNsToMs,
          static_cast<double>(t.encode_ns) * kNsToMs,
          static_cast<double>(t.fsync_ns) * kNsToMs,
          static_cast<double>(t.publish_ns) * kNsToMs,
          static_cast<double>(t.pipeline_ns()) * kNsToMs);
      registry->Comment(buf);
    }
  }
}

}  // namespace backsort
