#ifndef BACKSORT_COMMON_STATS_H_
#define BACKSORT_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace backsort {

/// Streaming accumulator for mean / variance (Welford) plus min/max.
class RunningStats {
 public:
  void Add(double x);

  /// Folds another accumulator into this one (parallel Welford combine), so
  /// per-shard metrics can be aggregated into one engine-wide view.
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores raw samples to answer percentile queries; used for latency
/// reporting in the benchmark kit.
class SampleSet {
 public:
  void Add(double x) { samples_.push_back(x); }
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }
  double Mean() const;
  /// Percentile in [0, 100]; interpolates between ranks. Returns 0 if empty.
  double Percentile(double p) const;
  /// Raw samples (ordering unspecified); used to merge per-thread sets.
  const std::vector<double>& samples() const { return samples_; }
  void Merge(const SampleSet& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace backsort

#endif  // BACKSORT_COMMON_STATS_H_
