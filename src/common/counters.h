#ifndef BACKSORT_COMMON_COUNTERS_H_
#define BACKSORT_COMMON_COUNTERS_H_

#include <cstdint>

namespace backsort {

/// Operation counters threaded through the sort implementations so the
/// move/comparison arithmetic of the paper (e.g. Example 3's straight-vs-
/// backward merge counts) can be measured rather than asserted.
///
/// `moves` counts element relocations (assignments of a TV pair to a new
/// slot, including copies into and out of scratch buffers); a swap counts as
/// 3 moves, matching the accounting used in the paper's merge example.
struct OpCounters {
  uint64_t comparisons = 0;
  uint64_t moves = 0;
  uint64_t swaps = 0;
  /// Peak number of scratch (extra-space) elements alive at once.
  uint64_t peak_scratch = 0;

  void Reset() { *this = OpCounters{}; }

  OpCounters& operator+=(const OpCounters& other) {
    comparisons += other.comparisons;
    moves += other.moves;
    swaps += other.swaps;
    if (other.peak_scratch > peak_scratch) peak_scratch = other.peak_scratch;
    return *this;
  }
};

}  // namespace backsort

#endif  // BACKSORT_COMMON_COUNTERS_H_
