#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace backsort {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const size_t n = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(n);
  mean_ += delta * static_cast<double>(other.count_) / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ = n;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::Mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

double SampleSet::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

}  // namespace backsort
