#ifndef BACKSORT_COMMON_CHUNK_CACHE_H_
#define BACKSORT_COMMON_CHUNK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/chunk_locator.h"
#include "common/types.h"

namespace backsort {

/// One decoded sensor chunk: the full (sorted) column pair of a sensor in
/// one sealed TsFile. Immutable once inserted into the cache — readers
/// share it by shared_ptr and filter their query range with binary search.
struct CachedChunk {
  std::vector<Timestamp> ts;
  std::vector<double> values;

  /// Approximate heap footprint charged against the cache capacity.
  size_t ApproxBytes() const {
    return ts.capacity() * sizeof(Timestamp) +
           values.capacity() * sizeof(double) + sizeof(CachedChunk);
  }
};

/// Point-in-time cache counters, shipped through EngineMetricsSnapshot
/// into the Prometheus exposition (docs/METRICS.md).
struct ChunkCacheStats {
  uint64_t hits = 0;           ///< decoded-chunk lookups served from cache
  uint64_t misses = 0;         ///< decoded-chunk lookups that went to disk
  uint64_t evictions = 0;      ///< entries evicted to stay under capacity
  uint64_t footer_hits = 0;    ///< footer/index lookups served from cache
  uint64_t footer_misses = 0;  ///< footer/index lookups that read the file
  uint64_t bytes = 0;          ///< resident bytes (chunks + footers)
  uint64_t entries = 0;        ///< resident entries (chunks + footers)
  uint64_t capacity_bytes = 0; ///< configured capacity (0 = disabled)
};

/// Sharded byte-bounded LRU cache for the read path: decoded sensor chunks
/// keyed by (file, sensor) and parsed footers (index blocks) keyed by
/// file, shared by every engine shard. Entries are immutable values held
/// by shared_ptr, so a hit costs one mutex hop + one refcount and evicted
/// entries stay valid for readers still holding them. Internally sharded
/// by file hash (all of one file's entries land in one cache shard), so
/// InvalidateFile scans a single shard and concurrent queries of different
/// files rarely contend. Capacity 0 disables the cache entirely —
/// `enabled()` gates every caller, restoring the direct-read path.
class ChunkCache {
 public:
  explicit ChunkCache(size_t capacity_bytes);

  ChunkCache(const ChunkCache&) = delete;
  ChunkCache& operator=(const ChunkCache&) = delete;

  bool enabled() const { return capacity_ > 0; }
  size_t capacity_bytes() const { return capacity_; }

  /// Looks up the decoded chunk of `sensor` in `file`; counts a hit or a
  /// miss. nullptr on miss (and always when disabled).
  std::shared_ptr<const CachedChunk> GetChunk(const std::string& file,
                                              const std::string& sensor);

  /// Inserts (or replaces) a decoded chunk, evicting LRU entries until the
  /// owning cache shard fits its capacity slice again. No-op when disabled.
  void PutChunk(const std::string& file, const std::string& sensor,
                std::shared_ptr<const CachedChunk> chunk);

  /// Footer/index cache: the flattened chunk directory of one file
  /// (FooterIndex), so a chunk-cache miss seeks straight to the chunk
  /// bytes instead of re-reading the index block. The same shared instance
  /// is typically also held by the file registry — one copy per file
  /// engine-wide.
  std::shared_ptr<const FooterIndex> GetFooter(const std::string& file);
  void PutFooter(const std::string& file,
                 std::shared_ptr<const FooterIndex> footer);

  /// Drops every entry (chunks and footer) of `file`. Called when
  /// compaction retires the file, so no query can hit stale data through a
  /// recycled path. Not counted as evictions.
  void InvalidateFile(const std::string& file);

  ChunkCacheStats GetStats() const;

 private:
  struct Entry {
    std::string key;
    std::string file;
    std::shared_ptr<const void> value;
    size_t bytes = 0;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> map;
    size_t bytes = 0;
  };

  static constexpr size_t kShardCount = 16;

  Shard& ShardFor(const std::string& file);
  /// Inserts under the shard lock, evicting from the LRU tail while the
  /// shard exceeds its capacity slice (the newest entry is never evicted,
  /// so an oversized chunk still serves repeats until displaced).
  void Insert(const std::string& file, std::string key,
              std::shared_ptr<const void> value, size_t bytes);
  std::shared_ptr<const void> Lookup(const std::string& file,
                                     const std::string& key);

  const size_t capacity_;
  const size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> footer_hits_{0};
  std::atomic<uint64_t> footer_misses_{0};
};

}  // namespace backsort

#endif  // BACKSORT_COMMON_CHUNK_CACHE_H_
