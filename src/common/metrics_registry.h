#ifndef BACKSORT_COMMON_METRICS_REGISTRY_H_
#define BACKSORT_COMMON_METRICS_REGISTRY_H_

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/engine_metrics.h"
#include "common/latency_histogram.h"
#include "common/status.h"

namespace backsort {

/// Collects metric samples and renders them in the Prometheus text
/// exposition format (version 0.0.4): one `# HELP` / `# TYPE` header per
/// family followed by its samples, in registration order. The registry is
/// sample-oriented — callers push current values (typically converted from
/// an EngineMetricsSnapshot via ExportEngineMetrics), render, and discard —
/// so one registry can also accumulate the same families across many
/// engine runs under different label sets (the bench harness does this).
class MetricsRegistry {
 public:
  /// Label set attached to one sample, rendered in the given order.
  using Labels = std::vector<std::pair<std::string, std::string>>;

  /// Adds a gauge sample. The family's HELP/TYPE header is emitted on
  /// first use; `help` of later calls for the same family is ignored.
  void Gauge(const std::string& name, const std::string& help,
             const Labels& labels, double value);

  /// Adds a counter sample. Prometheus convention: `name` ends in
  /// `_total`.
  void Counter(const std::string& name, const std::string& help,
               const Labels& labels, double value);

  /// Adds a summary rendered from a histogram snapshot: quantile samples
  /// (0.5, 0.9, 0.99 and 1 = observed max) plus `name_sum` and
  /// `name_count`. Recorded values are multiplied by `scale` (the engine
  /// records nanoseconds; scale 1e-9 renders seconds). Empty snapshots
  /// render NaN quantiles, like standard Prometheus client libraries.
  void Summary(const std::string& name, const std::string& help,
               const Labels& labels, const HistogramSnapshot& snapshot,
               double scale);

  /// Appends a free-form `# ` comment after all families — still valid
  /// exposition (scrapers skip unknown comments). Used for flush-trace
  /// spans, which have no Prometheus metric shape.
  void Comment(const std::string& text);

  /// Renders everything collected so far as Prometheus text exposition.
  std::string RenderPrometheus() const;

  /// Renders and writes to `path` via a temp file + rename, so a
  /// concurrent reader (`bstool watch`) never sees a torn file.
  Status WriteFile(const std::string& path) const;

  /// Escapes a label value per the exposition format (backslash, quote,
  /// newline). Exposed for tests.
  static std::string EscapeLabelValue(const std::string& v);

 private:
  struct Family {
    std::string name;
    std::string help;
    std::string type;
    std::vector<std::string> lines;  // fully formatted sample lines
  };

  Family* FamilyFor(const std::string& name, const std::string& help,
                    const std::string& type);
  void AddSample(Family* family, const std::string& sample_name,
                 const Labels& labels, double value);

  std::vector<Family> families_;
  std::map<std::string, size_t> family_index_;
  std::vector<std::string> comments_;
};

/// Converts one engine metrics snapshot into registry samples, attaching
/// `base_labels` to every sample (the bench harness labels runs with
/// panel/sorter/write_pct; bstool passes no labels). Exports the stage
/// latency summaries, engine totals, and the per-shard breakdown. When
/// `include_traces` is set, each shard's recent FlushTrace spans are
/// appended as `# flush-trace ...` comments.
void ExportEngineMetrics(const EngineMetricsSnapshot& snapshot,
                         const MetricsRegistry::Labels& base_labels,
                         bool include_traces, MetricsRegistry* registry);

}  // namespace backsort

#endif  // BACKSORT_COMMON_METRICS_REGISTRY_H_
