#ifndef BACKSORT_COMMON_TYPES_H_
#define BACKSORT_COMMON_TYPES_H_

#include <cstdint>

namespace backsort {

/// Timestamps are a unified signed 64-bit type, as in Apache IoTDB where T
/// is always a Java long regardless of the value type V.
using Timestamp = int64_t;

/// One time/value data point. The array index of a TvPair in a buffer is its
/// arrival order (Definition 1 in the paper); `t` is the generation
/// timestamp the series must be sorted by.
template <typename V>
struct TvPair {
  Timestamp t;
  V v;

  friend bool operator==(const TvPair& a, const TvPair& b) {
    return a.t == b.t && a.v == b.v;
  }
};

using TvPairInt = TvPair<int32_t>;
using TvPairLong = TvPair<int64_t>;
using TvPairFloat = TvPair<float>;
using TvPairDouble = TvPair<double>;

}  // namespace backsort

#endif  // BACKSORT_COMMON_TYPES_H_
