#ifndef BACKSORT_COMMON_TYPES_H_
#define BACKSORT_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace backsort {

/// Timestamps are a unified signed 64-bit type, as in Apache IoTDB where T
/// is always a Java long regardless of the value type V.
using Timestamp = int64_t;

/// One time/value data point. The array index of a TvPair in a buffer is its
/// arrival order (Definition 1 in the paper); `t` is the generation
/// timestamp the series must be sorted by.
template <typename V>
struct TvPair {
  Timestamp t;
  V v;

  friend bool operator==(const TvPair& a, const TvPair& b) {
    return a.t == b.t && a.v == b.v;
  }
};

using TvPairInt = TvPair<int32_t>;
using TvPairLong = TvPair<int64_t>;
using TvPairFloat = TvPair<float>;
using TvPairDouble = TvPair<double>;

/// One sensor's contiguous slice of a multi-sensor write batch. Non-owning:
/// the sensor name and the point array must outlive the span. This is the
/// unit the batched ingest path hands around — engine facade → shard →
/// WAL group-commit record — without copying points at any hop.
struct SensorSpanDouble {
  const std::string* sensor = nullptr;
  const TvPairDouble* points = nullptr;
  size_t count = 0;
};

}  // namespace backsort

#endif  // BACKSORT_COMMON_TYPES_H_
