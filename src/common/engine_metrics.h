#ifndef BACKSORT_COMMON_ENGINE_METRICS_H_
#define BACKSORT_COMMON_ENGINE_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/chunk_cache.h"
#include "common/latency_histogram.h"
#include "common/stats.h"

namespace backsort {

/// Server-side flush metrics (paper Section VI-D2): per-flush wall time of
/// the whole pipeline (sort + encode + I/O) and of the sort step alone.
/// Each EngineShard accumulates its own copy; the engine facade merges them
/// into one engine-wide view.
struct FlushMetrics {
  /// Whole flush pipeline wall time per flush, milliseconds.
  RunningStats flush_ms;
  /// TVList sort time inside the flush, milliseconds.
  RunningStats sort_ms;

  /// Folds another shard's accumulators into this one.
  void Merge(const FlushMetrics& other) {
    flush_ms.Merge(other.flush_ms);
    sort_ms.Merge(other.sort_ms);
  }
};

/// One completed flush as a lightweight trace span, retrievable from the
/// metrics snapshot (each shard keeps the most recent flushes in a fixed
/// ring buffer). Times are steady-clock nanoseconds since the engine's
/// construction (`seal_ns`/`dequeue_ns`/`publish_ns` are points on that
/// clock; `sort_ns`/`encode_ns`/`fsync_ns` are phase durations inside
/// [dequeue_ns, publish_ns], because sort and encode interleave per sensor
/// chunk rather than forming two contiguous windows).
struct FlushTrace {
  /// Shard that owned the flushed memtable.
  size_t shard_id = 0;
  /// Per-shard seal sequence number (publication order).
  uint64_t seq = 0;
  /// True for a sequence-memtable flush, false for unsequence.
  bool sequence = false;
  /// Points in the flushed memtable.
  size_t points = 0;
  /// When the memtable was sealed into the flush queue.
  int64_t seal_ns = 0;
  /// When a flush worker dequeued the job (queue wait = dequeue - seal).
  int64_t dequeue_ns = 0;
  /// When the TsFile was published and the memtable retired.
  int64_t publish_ns = 0;
  /// Total TVList sort time within this flush.
  int64_t sort_ns = 0;
  /// Total encode+write time (column building, encodings, page writes).
  int64_t encode_ns = 0;
  /// File seal time: footer write + flush to the OS (TsFileWriter::Finish).
  int64_t fsync_ns = 0;

  /// Time the sealed memtable waited in the flush queue.
  int64_t queue_wait_ns() const { return dequeue_ns - seal_ns; }
  /// Whole pipeline wall time, dequeue to publish.
  int64_t pipeline_ns() const { return publish_ns - dequeue_ns; }
};

/// Engine-wide write-path latency distributions, one histogram snapshot per
/// instrumented stage. All values are nanoseconds; recording is lock-free
/// (relaxed atomics shared by every shard and flush worker).
struct StageLatencySnapshots {
  /// One Write call: separation policy + WAL append + memtable insert,
  /// including shard-lock wait (and inline flush stalls when async_flush
  /// is off) — the client-visible write-enqueue latency.
  HistogramSnapshot enqueue;
  /// One WriteBatch call applied to a shard: the batched analog of
  /// `enqueue` — one sample per batch, spanning the whole group commit
  /// (partition + WAL batch record + bulk memtable appends).
  HistogramSnapshot batch_apply;
  /// Seal -> dequeue wait of a sealed memtable in the flush queue.
  HistogramSnapshot queue_wait;
  /// Per-flush total TVList sort time.
  HistogramSnapshot sort;
  /// One per-sensor sort+encode job inside a flush — the unit of work the
  /// intra-flush parallelism fans out (one sample per sensor per flush,
  /// whatever the parallelism).
  HistogramSnapshot sort_job;
  /// Per-flush total encode+write time.
  HistogramSnapshot encode;
  /// Per-flush file seal (footer + flush to OS) time.
  HistogramSnapshot seal;
  /// Per-flush whole pipeline (dequeue -> publish) wall time.
  HistogramSnapshot flush;

  /// Folds another set of stage snapshots into this one, bucket-wise.
  void Merge(const StageLatencySnapshots& other) {
    enqueue.Merge(other.enqueue);
    batch_apply.Merge(other.batch_apply);
    queue_wait.Merge(other.queue_wait);
    sort.Merge(other.sort);
    sort_job.Merge(other.sort_job);
    encode.Merge(other.encode);
    seal.Merge(other.seal);
    flush.Merge(other.flush);
  }
};

/// Engine-wide read-path latency distributions, one histogram snapshot per
/// query stage. All values are nanoseconds; recording is lock-free. The
/// stages partition one Query call: only `snapshot` runs under the shard
/// lock — everything after it (pruning, file reads, merge) is lock-free,
/// which is the read-path contract these histograms make observable.
struct QueryStageSnapshots {
  /// Consistent-snapshot acquisition under the shard lock: copying the
  /// sealed-file refs, flushing-table refs and working-memtable points.
  HistogramSnapshot snapshot;
  /// Footer-based file-level pruning of the sealed-file list.
  HistogramSnapshot prune;
  /// File/cache reads + memtable collection + query-time sorting.
  HistogramSnapshot read;
  /// K-way last-write-wins merge of the gathered runs.
  HistogramSnapshot merge;

  /// Folds another set of stage snapshots into this one, bucket-wise.
  void Merge(const QueryStageSnapshots& other) {
    snapshot.Merge(other.snapshot);
    prune.Merge(other.prune);
    read.Merge(other.read);
    merge.Merge(other.merge);
  }
};

/// Aggregation-path latency distributions, one histogram snapshot per
/// stage of an AggregateFast call. All values are nanoseconds; recording
/// is lock-free. The stages partition the three-tier plan: `plan` is the
/// snapshot + shadow classification, `stats` folds footer statistics of
/// fully covered chunks (tier 1), `decode` runs the page-level partial
/// aggregation and the exact fallback reads (tiers 2/3), `merge` combines
/// the partials into the final answer.
struct AggregateStageSnapshots {
  HistogramSnapshot plan;
  HistogramSnapshot stats;
  HistogramSnapshot decode;
  HistogramSnapshot merge;

  /// Folds another set of stage snapshots into this one, bucket-wise.
  void Merge(const AggregateStageSnapshots& other) {
    plan.Merge(other.plan);
    stats.Merge(other.stats);
    decode.Merge(other.decode);
    merge.Merge(other.merge);
  }
};

/// Compaction-path latency distributions, one histogram snapshot per
/// stage of a compaction cycle. All values are nanoseconds; recording is
/// lock-free like the other stage histograms.
struct CompactionStageSnapshots {
  /// One planner pass: registry snapshot + size-tier grouping (one sample
  /// per scheduler poll or explicit CompactStep, performed or not).
  HistogramSnapshot plan;
  /// One CompactionJob: streaming loser-tree merge of the input window
  /// into the renamed output file (dominant stage; runs without any
  /// engine lock held).
  HistogramSnapshot merge;
  /// Registry swap of one completed job: shard locks + files_mu window
  /// replacement + obsolete marking — the only part foreground writers
  /// can contend with.
  HistogramSnapshot publish;

  /// Folds another set of stage snapshots into this one, bucket-wise.
  void Merge(const CompactionStageSnapshots& other) {
    plan.Merge(other.plan);
    merge.Merge(other.merge);
    publish.Merge(other.publish);
  }
};

/// Point-in-time view of one shard's write-path state.
struct ShardMetricsSnapshot {
  /// Index of the shard within the engine ([0, shard_count)).
  size_t shard_id = 0;
  /// Sealed memtables waiting in (or executing from) the flush queue.
  size_t queued_flushes = 0;
  /// Sealed memtables not yet fully on disk (still visible to queries).
  size_t flushing_tables = 0;
  /// Flushes completed since the engine opened.
  size_t completed_flushes = 0;
  /// Points buffered in the shard's working seq+unseq memtables.
  size_t working_points = 0;
  /// Approximate heap bytes of the working memtables.
  size_t working_bytes = 0;
  /// Distinct sensors this shard has interned (dense SensorId space).
  size_t sensor_count = 0;
  /// Exact heap bytes of the per-sensor shard state: interner (name bytes,
  /// hash slots, reverse table) + watermark/last-cache vectors.
  size_t sensor_state_bytes = 0;
  /// Sealed TsFiles this shard consults at query time.
  size_t sealed_files = 0;
  /// Mean/variance flush accumulators (kept alongside the histograms for
  /// the paper's avg-flush-time tables).
  FlushMetrics flush;
  /// Most recent completed flushes, oldest first (bounded ring; see
  /// FlushTrace for field semantics).
  std::vector<FlushTrace> recent_traces;
};

/// Engine-wide metrics: the per-shard breakdown plus the merged totals the
/// benchmark harness reports.
struct EngineMetricsSnapshot {
  /// Merged mean/variance flush accumulators across shards.
  FlushMetrics flush;
  /// Per-shard breakdown, indexed by shard id.
  std::vector<ShardMetricsSnapshot> shards;
  /// Distinct sealed TsFiles across the whole engine.
  size_t sealed_files = 0;
  /// Engine-wide write-path latency histograms (shared by all shards).
  StageLatencySnapshots stages;
  /// Engine-wide read-path latency histograms (shared by all shards).
  QueryStageSnapshots query_stages;
  /// Range queries served since open (Query calls, all shards).
  uint64_t queries = 0;
  /// Sealed files skipped by footer-based time pruning, summed over
  /// queries.
  uint64_t query_files_pruned = 0;
  /// Sealed files that contributed a run to a query (opened or served from
  /// cache), summed over queries.
  uint64_t query_files_opened = 0;
  /// Aggregation-path stage histograms (plan / stats / decode / merge).
  AggregateStageSnapshots agg_stages;
  /// AggregateFast calls served since open.
  uint64_t agg_requests = 0;
  /// Chunks answered from footer statistics alone (tier 1, no decode).
  uint64_t agg_stats_hits = 0;
  /// Sources that fell to a decoding tier: one per partially covered or
  /// stat-less chunk (tier 2 page-level aggregation) and one per call
  /// routed through the exact merge fallback (tier 3, shadowed range).
  uint64_t agg_stats_misses = 0;
  /// Shared chunk-cache counters (see ChunkCacheStats).
  ChunkCacheStats cache;
  /// Batched write calls applied via the group-commit path since open.
  uint64_t batch_writes = 0;
  /// Points ingested via the batched write path since open.
  uint64_t batch_points = 0;
  /// Compaction-path latency histograms (plan / merge / publish).
  CompactionStageSnapshots compaction_stages;
  /// Compaction jobs completed (registry swapped) since open.
  uint64_t compaction_jobs = 0;
  /// Compaction jobs that failed (corrupt input, I/O error); the registry
  /// is untouched by a failed job.
  uint64_t compaction_failures = 0;
  /// Input files consumed by completed compaction jobs.
  uint64_t compaction_input_files = 0;
  /// Bytes written to compaction output files by completed jobs.
  uint64_t compaction_output_bytes = 0;

  /// Sealed memtables currently queued for flush, summed over shards.
  size_t total_queued_flushes() const {
    size_t n = 0;
    for (const ShardMetricsSnapshot& s : shards) n += s.queued_flushes;
    return n;
  }
  /// Points buffered in working memtables, summed over shards.
  size_t total_working_points() const {
    size_t n = 0;
    for (const ShardMetricsSnapshot& s : shards) n += s.working_points;
    return n;
  }
  /// Flushes completed since open, summed over shards.
  size_t total_completed_flushes() const {
    size_t n = 0;
    for (const ShardMetricsSnapshot& s : shards) n += s.completed_flushes;
    return n;
  }
  /// Approximate working-memtable heap bytes, summed over shards.
  size_t total_working_bytes() const {
    size_t n = 0;
    for (const ShardMetricsSnapshot& s : shards) n += s.working_bytes;
    return n;
  }
};

}  // namespace backsort

#endif  // BACKSORT_COMMON_ENGINE_METRICS_H_
