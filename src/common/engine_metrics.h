#ifndef BACKSORT_COMMON_ENGINE_METRICS_H_
#define BACKSORT_COMMON_ENGINE_METRICS_H_

#include <cstddef>
#include <vector>

#include "common/stats.h"

namespace backsort {

/// Server-side flush metrics (paper Section VI-D2): per-flush wall time of
/// the whole pipeline (sort + encode + I/O) and of the sort step alone.
/// Each EngineShard accumulates its own copy; the engine facade merges them
/// into one engine-wide view.
struct FlushMetrics {
  RunningStats flush_ms;
  RunningStats sort_ms;

  void Merge(const FlushMetrics& other) {
    flush_ms.Merge(other.flush_ms);
    sort_ms.Merge(other.sort_ms);
  }
};

/// Point-in-time view of one shard's write-path state.
struct ShardMetricsSnapshot {
  size_t shard_id = 0;
  /// Sealed memtables waiting in (or executing from) the flush queue.
  size_t queued_flushes = 0;
  /// Sealed memtables not yet fully on disk (still visible to queries).
  size_t flushing_tables = 0;
  /// Flushes completed since the engine opened.
  size_t completed_flushes = 0;
  /// Points buffered in the shard's working seq+unseq memtables.
  size_t working_points = 0;
  /// Approximate heap bytes of the working memtables.
  size_t working_bytes = 0;
  /// Sealed TsFiles this shard consults at query time.
  size_t sealed_files = 0;
  FlushMetrics flush;
};

/// Engine-wide metrics: the per-shard breakdown plus the merged totals the
/// benchmark harness reports.
struct EngineMetricsSnapshot {
  FlushMetrics flush;  ///< merged across shards
  std::vector<ShardMetricsSnapshot> shards;
  /// Distinct sealed TsFiles across the whole engine.
  size_t sealed_files = 0;

  size_t total_queued_flushes() const {
    size_t n = 0;
    for (const ShardMetricsSnapshot& s : shards) n += s.queued_flushes;
    return n;
  }
  size_t total_working_points() const {
    size_t n = 0;
    for (const ShardMetricsSnapshot& s : shards) n += s.working_points;
    return n;
  }
  size_t total_completed_flushes() const {
    size_t n = 0;
    for (const ShardMetricsSnapshot& s : shards) n += s.completed_flushes;
    return n;
  }
};

}  // namespace backsort

#endif  // BACKSORT_COMMON_ENGINE_METRICS_H_
