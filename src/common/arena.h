#ifndef BACKSORT_COMMON_ARENA_H_
#define BACKSORT_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace backsort {

/// Bump allocator backing the high-cardinality structures (memtable chunk
/// storage, sensor-name interning): allocation is a pointer bump, and a
/// whole arena is freed wholesale when its owner retires — a sealed
/// memtable releases every per-sensor buffer with a handful of frees
/// instead of one per sensor.
///
/// Blocks are 256 KiB, deliberately above glibc's mmap threshold
/// (M_MMAP_THRESHOLD, 128 KiB by default): each block is its own mapping,
/// so FreeAll() returns the memory to the OS immediately rather than
/// parking a million small chunks on malloc free lists. That is what makes
/// the post-flush RSS of an idle high-cardinality engine drop — see the
/// bytes/idle-sensor panels in bench/system_cardinality.cc.
///
/// Not thread-safe; owners allocate under their own lock (shard mutex).
class Arena {
 public:
  static constexpr size_t kBlockBytes = 256 * 1024;
  /// Requests larger than this get a dedicated exact-size block, so one
  /// huge allocation cannot strand most of a fresh block.
  static constexpr size_t kOversizeBytes = kBlockBytes / 4;

  Arena() = default;
  ~Arena() { FreeAll(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Never returns null; allocation failure throws std::bad_alloc like
  /// operator new.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    if (bytes > kOversizeBytes) {
      // Dedicated block, inserted *behind* the current bump block so the
      // current block's remaining space stays usable.
      char* block = static_cast<char*>(::operator new(bytes));
      total_ += bytes;
      blocks_.push_back(block);
      if (blocks_.size() > 1) {
        std::swap(blocks_[blocks_.size() - 1], blocks_[blocks_.size() - 2]);
      } else {
        // The oversize block must not become the bump block.
        remaining_ = 0;
      }
      return block;
    }
    const uintptr_t p = reinterpret_cast<uintptr_t>(ptr_);
    const size_t pad = (align - (p & (align - 1))) & (align - 1);
    if (pad + bytes > remaining_) {
      ptr_ = static_cast<char*>(::operator new(kBlockBytes));
      remaining_ = kBlockBytes;
      total_ += kBlockBytes;
      blocks_.push_back(ptr_);
      return AllocateFromCurrent(bytes, align);
    }
    ptr_ += pad;
    remaining_ -= pad;
    return AllocateFromCurrent(bytes, 1);
  }

  /// Typed array allocation (uninitialized storage).
  template <typename T>
  T* AllocateArray(size_t count) {
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Total bytes reserved from the system (block granularity) — the exact
  /// resident cost of everything this arena backs.
  size_t MemoryBytes() const { return total_; }

  /// Releases every block back to the OS. All storage handed out by
  /// Allocate is invalidated; callers owning objects with non-trivial
  /// destructors must have destroyed them first.
  void FreeAll() {
    for (char* b : blocks_) ::operator delete(b);
    blocks_.clear();
    ptr_ = nullptr;
    remaining_ = 0;
    total_ = 0;
  }

 private:
  void* AllocateFromCurrent(size_t bytes, size_t /*align*/) {
    char* out = ptr_;
    ptr_ += bytes;
    remaining_ -= bytes;
    return out;
  }

  std::vector<char*> blocks_;
  char* ptr_ = nullptr;
  size_t remaining_ = 0;
  size_t total_ = 0;
};

}  // namespace backsort

#endif  // BACKSORT_COMMON_ARENA_H_
