#include "common/crc32.h"

#include <cstring>

namespace backsort {

namespace {

// Slicing-by-16 CRC-32 (polynomial 0xedb88320, the zlib/WAL CRC):
// entries[0] is the classic byte-at-a-time table; entries[k][b] carries
// a CRC whose current low byte is `b` across k further zero bytes, so
// one step folds sixteen input bytes with sixteen independent table
// lookups instead of a serial chain of sixteen dependent ones. Same
// polynomial, same values, several times the throughput — this sits on
// the WAL append path and on both sides of every network frame. The
// 32-bit loads read input bytes out of the low byte first, which is only
// the stream order on little-endian hosts; big-endian builds take the
// byte-at-a-time loop (same gate as protocol.cc's kPointsAreWireLayout),
// keeping Crc32 value-identical across hosts.
struct Crc32Tables {
  uint32_t entries[16][256];

  constexpr Crc32Tables() : entries() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      entries[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = entries[0][i];
      for (int t = 1; t < 16; ++t) {
        c = entries[0][c & 0xffu] ^ (c >> 8);
        entries[t][i] = c;
      }
    }
  }
};

constexpr Crc32Tables kTables;

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
inline constexpr bool kHostIsLittleEndian = true;
#else
inline constexpr bool kHostIsLittleEndian = false;
#endif

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  while (kHostIsLittleEndian && n >= 16) {
    uint32_t w0;
    uint32_t w1;
    uint32_t w2;
    uint32_t w3;
    std::memcpy(&w0, p, 4);
    std::memcpy(&w1, p + 4, 4);
    std::memcpy(&w2, p + 8, 4);
    std::memcpy(&w3, p + 12, 4);
    w0 ^= c;
    c = kTables.entries[15][w0 & 0xffu] ^
        kTables.entries[14][(w0 >> 8) & 0xffu] ^
        kTables.entries[13][(w0 >> 16) & 0xffu] ^
        kTables.entries[12][w0 >> 24] ^
        kTables.entries[11][w1 & 0xffu] ^
        kTables.entries[10][(w1 >> 8) & 0xffu] ^
        kTables.entries[9][(w1 >> 16) & 0xffu] ^
        kTables.entries[8][w1 >> 24] ^
        kTables.entries[7][w2 & 0xffu] ^
        kTables.entries[6][(w2 >> 8) & 0xffu] ^
        kTables.entries[5][(w2 >> 16) & 0xffu] ^
        kTables.entries[4][w2 >> 24] ^
        kTables.entries[3][w3 & 0xffu] ^
        kTables.entries[2][(w3 >> 8) & 0xffu] ^
        kTables.entries[1][(w3 >> 16) & 0xffu] ^
        kTables.entries[0][w3 >> 24];
    p += 16;
    n -= 16;
  }
  while (n-- > 0) {
    c = kTables.entries[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace backsort
