#include "common/crc32.h"

namespace backsort {

namespace {

struct Crc32Table {
  uint32_t entries[256];

  constexpr Crc32Table() : entries() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

constexpr Crc32Table kTable;

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable.entries[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace backsort
