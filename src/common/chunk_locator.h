#ifndef BACKSORT_COMMON_CHUNK_LOCATOR_H_
#define BACKSORT_COMMON_CHUNK_LOCATOR_H_

#include <cmath>
#include <cstdint>
#include <map>
#include <string>

#include "common/types.h"

namespace backsort {

/// Where one sensor's chunk lives inside a sealed TsFile, plus the
/// per-sensor statistics the read path prunes on. Produced by the TsFile
/// writer at seal time, re-parsed from the file footer on recovery, and
/// cached (as part of a FooterMap) in the ChunkCache so repeated queries
/// never re-read the index block. Lives in common/ because both the file
/// format layer (src/tsfile/) and the cache layer depend on it.
struct ChunkLocator {
  /// Byte offset of the chunk from the start of the file.
  uint64_t offset = 0;
  /// Byte length of the chunk (up to the next chunk or the index block).
  uint64_t length = 0;
  /// Points stored in the chunk.
  uint64_t points = 0;
  /// Smallest timestamp in the chunk; min_t > max_t encodes "empty".
  Timestamp min_t = 0;
  /// Largest timestamp in the chunk.
  Timestamp max_t = -1;
  /// On-disk DataType byte (kept raw so common/ needs no tsfile types).
  uint8_t raw_type = 0;

  /// True when the footer carried value statistics (BSTF2 files). Stat-less
  /// BSTF1 files leave this false and the read path falls back to decode.
  bool has_stats = false;
  /// Smallest / largest / summed non-NaN value in the chunk. NaN points are
  /// excluded from these three but still counted in `points`; an all-NaN
  /// chunk stores min_v=+inf, max_v=-inf, sum_v=0.
  double min_v = 0;
  double max_v = 0;
  double sum_v = 0;
  /// Raw first/last values in time order (may be NaN).
  double first_v = 0;
  double last_v = 0;

  /// Whether the stored value stats can answer min/max/sum without decode.
  /// NaN-poisoned stats (possible only in hand-crafted files; the writer
  /// never emits them) force the decode path for safety.
  bool stats_usable() const {
    return has_stats && !std::isnan(min_v) && !std::isnan(max_v) &&
           !std::isnan(sum_v);
  }
};

/// One file's footer: sensor id -> chunk locator.
using FooterMap = std::map<std::string, ChunkLocator>;

}  // namespace backsort

#endif  // BACKSORT_COMMON_CHUNK_LOCATOR_H_
