#ifndef BACKSORT_COMMON_CHUNK_LOCATOR_H_
#define BACKSORT_COMMON_CHUNK_LOCATOR_H_

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace backsort {

/// Where one sensor's chunk lives inside a sealed TsFile, plus the
/// per-sensor statistics the read path prunes on. Produced by the TsFile
/// writer at seal time, re-parsed from the file footer on recovery, and
/// cached (as part of a FooterMap) in the ChunkCache so repeated queries
/// never re-read the index block. Lives in common/ because both the file
/// format layer (src/tsfile/) and the cache layer depend on it.
struct ChunkLocator {
  /// Byte offset of the chunk from the start of the file.
  uint64_t offset = 0;
  /// Byte length of the chunk (up to the next chunk or the index block).
  uint64_t length = 0;
  /// Points stored in the chunk.
  uint64_t points = 0;
  /// Smallest timestamp in the chunk; min_t > max_t encodes "empty".
  Timestamp min_t = 0;
  /// Largest timestamp in the chunk.
  Timestamp max_t = -1;
  /// On-disk DataType byte (kept raw so common/ needs no tsfile types).
  uint8_t raw_type = 0;

  /// True when the footer carried value statistics (BSTF2 files). Stat-less
  /// BSTF1 files leave this false and the read path falls back to decode.
  bool has_stats = false;
  /// Smallest / largest / summed non-NaN value in the chunk. NaN points are
  /// excluded from these three but still counted in `points`; an all-NaN
  /// chunk stores min_v=+inf, max_v=-inf, sum_v=0.
  double min_v = 0;
  double max_v = 0;
  double sum_v = 0;
  /// Raw first/last values in time order (may be NaN).
  double first_v = 0;
  double last_v = 0;

  /// Whether the stored value stats can answer min/max/sum without decode.
  /// NaN-poisoned stats (possible only in hand-crafted files; the writer
  /// never emits them) force the decode path for safety.
  bool stats_usable() const {
    return has_stats && !std::isnan(min_v) && !std::isnan(max_v) &&
           !std::isnan(sum_v);
  }
};

/// One file's footer: sensor id -> chunk locator. The tree form is
/// transient — the TsFile footer parser builds it sensor by sensor — and is
/// flattened into a FooterIndex before any long-lived holder (the chunk
/// cache) keeps it.
using FooterMap = std::map<std::string, ChunkLocator>;

/// Seal-time footer entries in sorted (sensor-name) order: what the TsFile
/// writer accumulates while appending chunks. A flat vector instead of a
/// FooterMap so sealing 100k sensors costs two large allocations instead
/// of 100k red-black-tree nodes the allocator then retains.
using FooterEntries = std::vector<std::pair<std::string, ChunkLocator>>;

/// Flat, immutable image of one file's footer: the (sorted) sensor names
/// concatenated into one blob with n+1 offsets, parallel to a dense
/// locator vector. At high cardinality this replaces one red-black-tree
/// node + one heap string per sensor per copy with three allocations
/// total, and the registry and the chunk cache share a single instance by
/// shared_ptr instead of each holding a deep std::map copy — the dominant
/// post-flush resident cost at 1M sensors. Lookup is binary search over
/// the name blob; it never changes what the footer *contains*, only how it
/// is stored in memory (file bytes are untouched).
class FooterIndex {
 public:
  FooterIndex() { offsets_.push_back(0); }

  /// Flattens a parsed footer. Map iteration order is lexicographic, which
  /// Find's binary search relies on.
  explicit FooterIndex(const FooterMap& map) {
    size_t name_bytes = 0;
    for (const auto& [name, locator] : map) name_bytes += name.size();
    names_.reserve(name_bytes);
    offsets_.reserve(map.size() + 1);
    locators_.reserve(map.size());
    offsets_.push_back(0);
    for (const auto& [name, locator] : map) {
      names_.append(name);
      offsets_.push_back(static_cast<uint32_t>(names_.size()));
      locators_.push_back(locator);
    }
  }

  /// Flattens seal-time footer entries. `entries` must already be sorted
  /// by name (TsFileWriter::Finish sorts); Find's binary search relies on
  /// it.
  explicit FooterIndex(const FooterEntries& entries) {
    size_t name_bytes = 0;
    for (const auto& [name, locator] : entries) name_bytes += name.size();
    names_.reserve(name_bytes);
    offsets_.reserve(entries.size() + 1);
    locators_.reserve(entries.size());
    offsets_.push_back(0);
    for (const auto& [name, locator] : entries) {
      names_.append(name);
      offsets_.push_back(static_cast<uint32_t>(names_.size()));
      locators_.push_back(locator);
    }
  }

  size_t size() const { return locators_.size(); }
  bool empty() const { return locators_.empty(); }

  /// Name of the i-th sensor (ascending order); view into this index.
  std::string_view NameAt(size_t i) const {
    return std::string_view(names_.data() + offsets_[i],
                            offsets_[i + 1] - offsets_[i]);
  }
  const ChunkLocator& LocatorAt(size_t i) const { return locators_[i]; }

  /// Locator of `sensor`'s chunk, or nullptr when the file has none.
  const ChunkLocator* Find(std::string_view sensor) const {
    size_t lo = 0;
    size_t hi = locators_.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (NameAt(mid) < sensor) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == locators_.size() || NameAt(lo) != sensor) return nullptr;
    return &locators_[lo];
  }

  /// Exact heap footprint (for cache charging and memory sizing).
  size_t MemoryBytes() const {
    return names_.capacity() + offsets_.capacity() * sizeof(uint32_t) +
           locators_.capacity() * sizeof(ChunkLocator);
  }

 private:
  std::string names_;
  std::vector<uint32_t> offsets_;
  std::vector<ChunkLocator> locators_;
};

}  // namespace backsort

#endif  // BACKSORT_COMMON_CHUNK_LOCATOR_H_
