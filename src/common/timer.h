#ifndef BACKSORT_COMMON_TIMER_H_
#define BACKSORT_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace backsort {

/// Monotonic wall-clock timer used by the benchmark harness.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace backsort

#endif  // BACKSORT_COMMON_TIMER_H_
