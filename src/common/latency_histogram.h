#ifndef BACKSORT_COMMON_LATENCY_HISTOGRAM_H_
#define BACKSORT_COMMON_LATENCY_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace backsort {

/// Shared bucket geometry of LatencyHistogram / HistogramSnapshot: a fixed
/// log-linear layout (HdrHistogram-style) over the whole uint64 range.
/// Values below 4 get exact unit buckets; every larger power-of-two octave
/// is split into 4 linear sub-buckets, so the relative quantile error is
/// bounded by 1/4 regardless of magnitude. The layout is value-agnostic;
/// the engine records nanoseconds.
struct HistogramBuckets {
  /// 4 exact buckets + 62 octaves x 4 sub-buckets (msb 2..63).
  static constexpr size_t kBucketCount = 4 + 62 * 4;

  static constexpr size_t BucketIndex(uint64_t v) {
    if (v < 4) return static_cast<size_t>(v);
    // msb >= 2; the two bits below the msb pick the sub-bucket.
    int msb = 63;
    while ((v >> msb) == 0) --msb;
    const size_t sub = static_cast<size_t>((v >> (msb - 2)) & 3);
    return static_cast<size_t>(msb - 1) * 4 + sub;
  }

  /// Smallest value mapped to bucket `i` (inclusive).
  static constexpr uint64_t LowerBound(size_t i) {
    if (i < 8) return i;  // exact + first-octave region: width-1 buckets
    const size_t msb = i / 4 + 1;
    const size_t sub = i % 4;
    return static_cast<uint64_t>(4 + sub) << (msb - 2);
  }

  /// One past the largest value mapped to bucket `i` (exclusive). Saturates
  /// at UINT64_MAX for the top bucket instead of wrapping.
  static constexpr uint64_t UpperBound(size_t i) {
    if (i + 1 >= kBucketCount) return UINT64_MAX;
    return LowerBound(i + 1);
  }
};

/// Immutable point-in-time copy of a LatencyHistogram: the bucket counts
/// plus exact count/sum/min/max side counters. Plain data — safe to merge,
/// copy between threads and ship inside EngineMetricsSnapshot.
struct HistogramSnapshot {
  std::array<uint64_t, HistogramBuckets::kBucketCount> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;  ///< exact sum of recorded values (not bucket midpoints)
  uint64_t min = 0;  ///< 0 when empty
  uint64_t max = 0;  ///< 0 when empty

  /// Value at quantile `q` in [0, 1], linearly interpolated inside the
  /// containing bucket and clamped to the observed [min, max] (so
  /// ValueAtQuantile(1) is the exact max). Returns 0 when empty.
  double ValueAtQuantile(double q) const {
    if (count == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the target sample, 1-based.
    uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count));
    if (target < 1) target = 1;
    if (target > count) target = count;
    uint64_t cum = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] == 0) continue;
      cum += buckets[i];
      if (cum < target) continue;
      // Interpolate within [lo, hi), tightened by the observed extremes.
      double lo = static_cast<double>(
          std::max(HistogramBuckets::LowerBound(i), min));
      double hi =
          static_cast<double>(std::min(HistogramBuckets::UpperBound(i), max));
      if (hi < lo) hi = lo;
      const uint64_t before = cum - buckets[i];
      const double frac = static_cast<double>(target - before) /
                          static_cast<double>(buckets[i]);
      return lo + frac * (hi - lo);
    }
    return static_cast<double>(max);  // unreachable: cum == count >= target
  }

  /// Percentile in [0, 100] — ValueAtQuantile(p / 100).
  double Percentile(double p) const { return ValueAtQuantile(p / 100.0); }

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Folds `other` into this snapshot (exact for count/sum/min/max, bucket-
  /// wise for the distribution) — used to aggregate across histograms.
  void Merge(const HistogramSnapshot& other) {
    for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
    if (other.count > 0) {
      min = count == 0 ? other.min : std::min(min, other.min);
      max = count == 0 ? other.max : std::max(max, other.max);
    }
    count += other.count;
    sum += other.sum;
  }
};

/// Fixed-bucket log-scale latency histogram with lock-free recording:
/// Record() is a handful of relaxed atomic adds (no locks, no allocation),
/// cheap enough to sit on the per-point write path. Concurrent recorders
/// never wait on each other; Snapshot() reads the buckets with relaxed
/// loads, so a snapshot taken during recording is approximate in the usual
/// monitoring sense (each individual counter is atomic, the set is not cut
/// at one instant).
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one value (the engine records nanoseconds). Wait-free apart
  /// from the min/max CAS loops, which only retry while the extremes are
  /// actively moving.
  void Record(uint64_t v) {
    buckets_[HistogramBuckets::BucketIndex(v)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    for (size_t i = 0; i < HistogramBuckets::kBucketCount; ++i) {
      snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
    const uint64_t mn = min_.load(std::memory_order_relaxed);
    snap.min = snap.count == 0 ? 0 : mn;
    return snap;
  }

 private:
  std::array<std::atomic<uint64_t>, HistogramBuckets::kBucketCount> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

}  // namespace backsort

#endif  // BACKSORT_COMMON_LATENCY_HISTOGRAM_H_
