#ifndef BACKSORT_COMMON_CRC32_H_
#define BACKSORT_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace backsort {

/// CRC-32 (IEEE 802.3 polynomial, reflected), used to frame WAL records so
/// torn or corrupted tail records are detected during recovery.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace backsort

#endif  // BACKSORT_COMMON_CRC32_H_
