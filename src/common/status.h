#ifndef BACKSORT_COMMON_STATUS_H_
#define BACKSORT_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace backsort {

/// Lightweight status object used across the storage layers.
///
/// Mirrors the RocksDB/Arrow convention: functions that can fail return a
/// `Status` (or a value plus a `Status` out-param) instead of throwing.
/// A default-constructed `Status` is OK and carries no allocation.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kCorruption,
    kIOError,
    kNotSupported,
    kOutOfRange,
    kUnavailable,
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  /// The peer is alive but refusing work right now (admission control shed
  /// the request, or every retry drew an Overloaded response). Retryable.
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<CODE>: <message>" string for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Evaluates `expr`; if the resulting Status is not OK, returns it from the
/// enclosing function. Usage: RETURN_NOT_OK(writer.Flush());
#define RETURN_NOT_OK(expr)                        \
  do {                                             \
    ::backsort::Status _st = (expr);               \
    if (!_st.ok()) return _st;                     \
  } while (false)

}  // namespace backsort

#endif  // BACKSORT_COMMON_STATUS_H_
