#include "common/chunk_cache.h"

#include <algorithm>
#include <functional>

namespace backsort {

namespace {

/// Chunk keys are 'c' + file + '\0' + sensor; footer keys are 'f' + file.
/// The leading tag keeps the two namespaces disjoint even for odd sensor
/// ids, and the embedded file name lets InvalidateFile match by prefix.
std::string ChunkKey(const std::string& file, const std::string& sensor) {
  std::string key;
  key.reserve(1 + file.size() + 1 + sensor.size());
  key += 'c';
  key += file;
  key += '\0';
  key += sensor;
  return key;
}

std::string FooterKey(const std::string& file) { return 'f' + file; }

size_t FooterBytes(const FooterIndex& footer) {
  return sizeof(FooterIndex) + footer.MemoryBytes();
}

}  // namespace

ChunkCache::ChunkCache(size_t capacity_bytes)
    : capacity_(capacity_bytes),
      shard_capacity_(std::max<size_t>(capacity_bytes / kShardCount, 1)) {
  if (capacity_ == 0) return;
  shards_.reserve(kShardCount);
  for (size_t i = 0; i < kShardCount; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ChunkCache::Shard& ChunkCache::ShardFor(const std::string& file) {
  return *shards_[std::hash<std::string>{}(file) % kShardCount];
}

std::shared_ptr<const void> ChunkCache::Lookup(const std::string& file,
                                               const std::string& key) {
  Shard& shard = ShardFor(file);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void ChunkCache::Insert(const std::string& file, std::string key,
                        std::shared_ptr<const void> value, size_t bytes) {
  Shard& shard = ShardFor(file);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }
  shard.lru.push_front(Entry{std::move(key), file, std::move(value), bytes});
  shard.map[shard.lru.front().key] = shard.lru.begin();
  shard.bytes += bytes;
  while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::shared_ptr<const CachedChunk> ChunkCache::GetChunk(
    const std::string& file, const std::string& sensor) {
  if (!enabled()) return nullptr;
  auto value = Lookup(file, ChunkKey(file, sensor));
  if (value == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return std::static_pointer_cast<const CachedChunk>(value);
}

void ChunkCache::PutChunk(const std::string& file, const std::string& sensor,
                          std::shared_ptr<const CachedChunk> chunk) {
  if (!enabled() || chunk == nullptr) return;
  const size_t bytes = chunk->ApproxBytes();
  Insert(file, ChunkKey(file, sensor), std::move(chunk), bytes);
}

std::shared_ptr<const FooterIndex> ChunkCache::GetFooter(
    const std::string& file) {
  if (!enabled()) return nullptr;
  auto value = Lookup(file, FooterKey(file));
  if (value == nullptr) {
    footer_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  footer_hits_.fetch_add(1, std::memory_order_relaxed);
  return std::static_pointer_cast<const FooterIndex>(value);
}

void ChunkCache::PutFooter(const std::string& file,
                           std::shared_ptr<const FooterIndex> footer) {
  if (!enabled() || footer == nullptr) return;
  const size_t bytes = FooterBytes(*footer);
  Insert(file, FooterKey(file), std::move(footer), bytes);
}

void ChunkCache::InvalidateFile(const std::string& file) {
  if (!enabled()) return;
  Shard& shard = ShardFor(file);
  std::unique_lock<std::mutex> lock(shard.mu);
  for (auto it = shard.lru.begin(); it != shard.lru.end();) {
    if (it->file == file) {
      shard.bytes -= it->bytes;
      shard.map.erase(it->key);
      it = shard.lru.erase(it);
    } else {
      ++it;
    }
  }
}

ChunkCacheStats ChunkCache::GetStats() const {
  ChunkCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.footer_hits = footer_hits_.load(std::memory_order_relaxed);
  stats.footer_misses = footer_misses_.load(std::memory_order_relaxed);
  stats.capacity_bytes = capacity_;
  for (const auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    stats.bytes += shard->bytes;
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace backsort
