#ifndef BACKSORT_NET_CLIENT_H_
#define BACKSORT_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "tsfile/tsfile.h"

namespace backsort {

struct ClientOptions {
  /// Deadline for establishing the TCP connection.
  int connect_timeout_ms = 5'000;

  /// Whole-round-trip deadline per request: one budget covers the send
  /// AND the receive of the matching response, measured from the start of
  /// the call (0 = no deadline). A server that dribbles bytes forever
  /// cannot stall the client — this is a deadline, not a per-syscall
  /// idle timeout. Expiry surfaces as IOError and closes the connection,
  /// since a late response would desynchronize the stream.
  int request_timeout_ms = 10'000;

  /// Bounded retry of Overloaded responses: up to `max_retries` re-sends
  /// with doubling backoff starting at `backoff_initial_ms`. Retrying is
  /// safe — a shed request was never applied. Set max_retries = 0 to
  /// surface Overloaded to the caller immediately.
  int max_retries = 3;
  int backoff_initial_ms = 10;

  /// Backoff jitter: each retry sleeps a uniform draw from
  /// [base * (1 - j), base * (1 + j)] instead of exactly `base`, so a
  /// burst of clients shed together does not re-converge on the server in
  /// lockstep on every retry round. 0 disables; clamped to [0, 1].
  double backoff_jitter = 0.5;
};

/// Blocking-style client for the backsort wire protocol over one TCP
/// connection. Two modes:
///
///  - Call methods (Ping, WriteBatch, Query, ...): one request in flight,
///    response awaited before returning — a simple request/response pipe.
///  - Pipelining (PipelineWriteBatch + PipelineDrain): several requests
///    sent back-to-back without waiting; the server executes them on its
///    worker pool and writes the responses in request order, so a drain
///    just reads them sequentially. This is how a single connection
///    approaches in-process write throughput (bench/system_net).
///
/// Methods mirror the StorageEngine API and return the server's status
/// verbatim; Overloaded sheds come back as Status::Unavailable after
/// retries are exhausted (Call) or verbatim (pipeline, which never
/// retries). Not thread-safe — use one client per thread.
class BacksortClient {
 public:
  explicit BacksortClient(ClientOptions options = {});

  /// Connects (with the configured deadline); the socket is left
  /// non-blocking so every transfer can honor the whole-round-trip
  /// request deadline. Reconnecting an open client closes the old
  /// connection first.
  Status Connect(const std::string& host, uint16_t port);

  void Close() {
    fd_.Reset();
    pending_.clear();
    sendbuf_.Clear();
    rbuf_.clear();
    rpos_ = 0;
  }
  bool connected() const { return fd_.valid(); }

  /// Round-trip liveness probe (empty payload both ways).
  Status Ping();

  Status WriteBatch(const std::string& sensor,
                    const std::vector<TvPairDouble>& points);

  Status Query(const std::string& sensor, Timestamp t_min, Timestamp t_max,
               std::vector<TvPairDouble>* out);

  Status GetLatest(const std::string& sensor, TvPairDouble* out);

  Status AggregateFast(const std::string& sensor, Timestamp t_min,
                       Timestamp t_max, TsFileReader::RangeStats* stats,
                       bool* used_fast_path = nullptr);

  /// Fetches the server's merged engine + net Prometheus exposition.
  Status MetricsSnapshot(std::string* exposition);

  // --- replication ------------------------------------------------------------

  /// Ships one chunk of the local ship log to the follower; on OK,
  /// `acked` is the cursor the follower has persisted (== req.end when
  /// the chunk applied). `wire_bytes` (optional) reports the encoded
  /// request payload size — the Replicator's ship_bytes metric, surfaced
  /// here so the hot path encodes each chunk exactly once. Used by the
  /// cluster Replicator.
  Status ReplicateChunk(const ReplicateBatchRequest& req, ShipCursor* acked,
                        size_t* wire_bytes = nullptr);

  /// Asks the follower for the frontier it has persisted for `source_id`
  /// (empty when it never received a chunk) — the reconnect handshake.
  Status FetchReplicationCursor(const std::string& source_id,
                                ShipFrontier* frontier);

  // --- pipelining -----------------------------------------------------------

  /// Queues a WriteBatch request without waiting for its response; the
  /// response is collected (in order) by the next PipelineDrain. Frames
  /// are encoded straight into a cork buffer and flushed to the socket
  /// in bulk — when the buffer passes a threshold, or at the latest when
  /// PipelineDrain needs the responses — so a deep pipeline costs one
  /// send syscall per many requests, not per request. Only the send half
  /// is bounded by request_timeout_ms. Transport failures close the
  /// connection and discard the pipeline.
  Status PipelineWriteBatch(const std::string& sensor,
                            const std::vector<TvPairDouble>& points);

  /// Reads outstanding pipelined responses, in request order, until at
  /// most `target_depth` remain pending — 0 (the default) drains them
  /// all; `target_depth = window - 1` keeps a sliding window full
  /// instead of stop-and-waiting on whole windows. Each response gets
  /// its own request_timeout_ms receive deadline. Returns the first
  /// non-OK server status seen (still draining to the target, so the
  /// stream stays usable); a transport/framing failure closes the
  /// connection and returns immediately. No-op when `pending_` is
  /// already at or below the target.
  Status PipelineDrain(size_t target_depth = 0);

  /// Requests sent but not yet drained.
  size_t pipeline_depth() const { return pending_.size(); }

  /// Overloaded responses absorbed by retry (plus the final one when
  /// retries ran out) and Overloaded pipeline responses observed by
  /// PipelineDrain, since construction — the bench reports this.
  uint64_t overload_retries() const { return overload_retries_; }

 private:
  /// One request/response exchange with bounded Overloaded retry. On OK,
  /// `response` holds the response body bytes after the wire status.
  /// Fails with InvalidArgument while pipelined responses are pending
  /// (drain first — interleaving would mis-pair responses).
  Status Call(MsgType type, const ByteBuffer& request_payload,
              std::vector<uint8_t>* response);

  /// Sends one frame and reads the matching response under a single
  /// whole-round-trip deadline; no retry. Transport and framing failures
  /// close the connection (the stream can no longer be trusted);
  /// server-reported errors keep it open.
  Status CallOnce(MsgType type, const ByteBuffer& request_payload,
                  std::vector<uint8_t>* response);

  /// Sends one request frame, all bytes by `deadline_ms` (MonotonicMillis
  /// clock; <= 0 = none). Closes on failure.
  Status SendRequest(MsgType type, const ByteBuffer& request_payload,
                     int64_t deadline_ms);

  /// Reads one response frame of `type` by `deadline_ms`, peels the wire
  /// status and returns it; `response` (may be null) gets the body bytes.
  /// Closes on transport/framing failure.
  Status RecvResponse(MsgType type, int64_t deadline_ms,
                      std::vector<uint8_t>* response);

  /// request_timeout_ms from now as a MonotonicMillis deadline (<= 0 =
  /// none).
  int64_t RequestDeadline() const;

  /// Sends every corked pipelined frame; closes on failure. No-op when
  /// the cork buffer is empty.
  Status FlushPipeline(int64_t deadline_ms);

  /// Copies `n` bytes from the buffered receive stream into `dst`,
  /// refilling `rbuf_` with chunk-sized recvs as needed — so draining
  /// many small responses costs one syscall per chunk, not per field.
  Status RecvBuffered(void* dst, size_t n, int64_t deadline_ms);

  ClientOptions options_;
  ScopedFd fd_;
  /// Types of pipelined requests queued/sent but not yet drained, in
  /// order.
  std::deque<MsgType> pending_;
  /// Encoded-but-unsent pipelined frames (non-empty only between a
  /// PipelineWriteBatch and the flush that ships it).
  ByteBuffer sendbuf_;
  /// Buffered receive stream: rbuf_[rpos_..] holds bytes read off the
  /// socket but not yet consumed by RecvBuffered.
  std::vector<uint8_t> rbuf_;
  size_t rpos_ = 0;
  uint64_t overload_retries_ = 0;
  /// Jitter source for retry backoff (seeded per client in the ctor, so
  /// clients constructed together still draw different sleeps).
  Rng rng_;
};

}  // namespace backsort

#endif  // BACKSORT_NET_CLIENT_H_
