#ifndef BACKSORT_NET_CLIENT_H_
#define BACKSORT_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "tsfile/tsfile.h"

namespace backsort {

struct ClientOptions {
  /// Deadline for establishing the TCP connection.
  int connect_timeout_ms = 5'000;

  /// Per-request socket deadline (applies to both halves of the round
  /// trip); an expired deadline surfaces as IOError and closes the
  /// connection, since a late response would desynchronize the stream.
  int request_timeout_ms = 10'000;

  /// Bounded retry of Overloaded responses: up to `max_retries` re-sends
  /// with doubling backoff starting at `backoff_initial_ms`. Retrying is
  /// safe — a shed request was never applied. Set max_retries = 0 to
  /// surface Overloaded to the caller immediately.
  int max_retries = 3;
  int backoff_initial_ms = 10;
};

/// Blocking client for the backsort wire protocol: one TCP connection, one
/// request in flight at a time (the server responds in order, so a
/// connection is a simple request/response pipe). Methods mirror the
/// StorageEngine API and return the server's status verbatim; Overloaded
/// sheds come back as Status::Unavailable after retries are exhausted.
/// Not thread-safe — use one client per thread (bench/system_net does).
class BacksortClient {
 public:
  explicit BacksortClient(ClientOptions options = {}) : options_(options) {}

  /// Connects (with the configured deadline) and applies the request
  /// timeout to the socket. Reconnecting an open client closes the old
  /// connection first.
  Status Connect(const std::string& host, uint16_t port);

  void Close() { fd_.Reset(); }
  bool connected() const { return fd_.valid(); }

  /// Round-trip liveness probe (empty payload both ways).
  Status Ping();

  Status WriteBatch(const std::string& sensor,
                    const std::vector<TvPairDouble>& points);

  Status Query(const std::string& sensor, Timestamp t_min, Timestamp t_max,
               std::vector<TvPairDouble>* out);

  Status GetLatest(const std::string& sensor, TvPairDouble* out);

  Status AggregateFast(const std::string& sensor, Timestamp t_min,
                       Timestamp t_max, TsFileReader::RangeStats* stats,
                       bool* used_fast_path = nullptr);

  /// Fetches the server's merged engine + net Prometheus exposition.
  Status MetricsSnapshot(std::string* exposition);

  /// Overloaded responses absorbed by retry (plus the final one when
  /// retries ran out) since construction — the bench reports this.
  uint64_t overload_retries() const { return overload_retries_; }

 private:
  /// One request/response exchange with bounded Overloaded retry. On OK,
  /// `response` holds the response body bytes after the wire status.
  Status Call(MsgType type, const ByteBuffer& request_payload,
              std::vector<uint8_t>* response);

  /// Sends one frame and reads the matching response; no retry. Transport
  /// and framing failures close the connection (the stream can no longer
  /// be trusted); server-reported errors keep it open.
  Status CallOnce(MsgType type, const ByteBuffer& request_payload,
                  std::vector<uint8_t>* response);

  ClientOptions options_;
  ScopedFd fd_;
  uint64_t overload_retries_ = 0;
};

}  // namespace backsort

#endif  // BACKSORT_NET_CLIENT_H_
