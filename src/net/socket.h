#ifndef BACKSORT_NET_SOCKET_H_
#define BACKSORT_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace backsort {

/// Thin RAII + Status wrappers over POSIX TCP sockets — just what the
/// server and client need: bind/listen/accept, connect with a deadline,
/// send-all / recv-exactly with timeout mapping, deadline-bounded I/O on
/// non-blocking descriptors (the client's whole-round-trip budget), and
/// half-close to wake a peer blocked in recv. The server's epoll
/// readiness loop lives in net/server.cc; these helpers stay
/// loop-agnostic.

/// Owns one file descriptor; closes it on destruction. Movable, not
/// copyable.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { Reset(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.Release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() { return std::exchange(fd_, -1); }
  void Reset();

 private:
  int fd_ = -1;
};

/// Listening IPv4 socket. Open() binds (port 0 = kernel-assigned; the
/// resolved port is readable afterwards) and listens.
class TcpListener {
 public:
  Status Open(const std::string& host, uint16_t port, int backlog);

  /// Blocks for the next connection. IOError once the listener is closed
  /// (the server's shutdown path) or on a fatal accept error.
  Status Accept(ScopedFd* conn);

  /// Unblocks any Accept in progress without touching the descriptor, so
  /// a concurrent accept-loop thread may keep reading `fd_` safely. The
  /// caller closes via Close() after joining that thread.
  void Shutdown();

  /// Unblocks any Accept in progress and closes the socket. Not safe
  /// while another thread may still use the listener — see Shutdown().
  void Close();

  uint16_t port() const { return port_; }
  bool valid() const { return fd_.valid(); }

 private:
  ScopedFd fd_;
  uint16_t port_ = 0;
};

/// Connects to host:port with a deadline (non-blocking connect + poll),
/// then returns a blocking socket. `host` is a numeric IPv4 address or a
/// name resolvable by getaddrinfo.
Status TcpConnect(const std::string& host, uint16_t port, int timeout_ms,
                  ScopedFd* out);

/// Applies SO_RCVTIMEO / SO_SNDTIMEO (0 = block forever).
Status SetSocketTimeouts(int fd, int recv_timeout_ms, int send_timeout_ms);

/// Writes all `n` bytes (MSG_NOSIGNAL; a dead peer yields IOError, not
/// SIGPIPE).
Status SendAll(int fd, const void* data, size_t n);

/// Reads exactly `n` bytes. `clean_eof` (may be null) reports a peer close
/// before the first byte — a normal end of stream, still returned as a
/// non-OK IOError so callers can't mistake it for data. EOF mid-buffer and
/// timeouts are plain IOErrors with clean_eof = false.
Status RecvAll(int fd, void* data, size_t n, bool* clean_eof);

/// shutdown(SHUT_RD): wakes a thread blocked reading this socket without
/// tearing down the write side (in-flight responses still go out).
void ShutdownRead(int fd);

/// Sets or clears O_NONBLOCK.
Status SetNonBlocking(int fd, bool enabled);

/// Monotonic milliseconds (steady clock) for I/O deadlines.
int64_t MonotonicMillis();

/// Writes all `n` bytes to a non-blocking socket, polling for writability
/// until `deadline_ms` (MonotonicMillis clock; <= 0 = no deadline). An
/// expired deadline surfaces as IOError("send deadline ..."). This is the
/// deadline-correct counterpart of SendAll: the budget spans the whole
/// transfer, not each individual send() call.
Status SendAllDeadline(int fd, const void* data, size_t n,
                       int64_t deadline_ms);

/// Reads exactly `n` bytes from a non-blocking socket under the same
/// whole-transfer deadline contract. `clean_eof` as in RecvAll.
Status RecvAllDeadline(int fd, void* data, size_t n, int64_t deadline_ms,
                       bool* clean_eof);

/// Reads whatever one successful recv returns — between 1 and `n` bytes
/// into `data`, count in `*got` — polling until readable or `deadline_ms`
/// expires. Lets buffered readers drain many small frames per syscall
/// instead of issuing one exact-size recv per field. EOF surfaces as
/// IOError("connection closed").
Status RecvSomeDeadline(int fd, void* data, size_t n, size_t* got,
                        int64_t deadline_ms);

}  // namespace backsort

#endif  // BACKSORT_NET_SOCKET_H_
