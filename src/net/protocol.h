#ifndef BACKSORT_NET_PROTOCOL_H_
#define BACKSORT_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "encoding/bytes.h"
#include "engine/wal_tailer.h"
#include "tsfile/tsfile.h"

namespace backsort {

/// Binary wire protocol of the backsort network service — the same framing
/// discipline as the WAL (length prefix + CRC32 over the payload), plus a
/// magic preamble so a connection speaking the wrong protocol is rejected
/// on its first frame. All integers are little-endian (ByteBuffer /
/// ByteReader); doubles travel as their IEEE-754 bit patterns in fixed64.
///
/// Frame layout (header is kFrameHeaderSize = 13 bytes):
///
///   [magic   : fixed32]  kFrameMagic ("BSN1")
///   [type    : u8]       MsgType; responses set kResponseBit
///   [size    : fixed32]  payload byte count (capped by the receiver)
///   [crc     : fixed32]  Crc32(payload)
///   [payload : size bytes]
///
/// Every response payload begins with a wire status (u8 code +
/// length-prefixed message); a type-specific body follows only when the
/// code is kWireOk. `kWireOverloaded` is the admission-control shed signal
/// — the request was not applied and may be retried (BacksortClient does,
/// with bounded backoff).

/// "BSN1" as a little-endian fixed32.
inline constexpr uint32_t kFrameMagic = 0x314E5342u;

/// Bytes before the payload: magic + type + size + crc.
inline constexpr size_t kFrameHeaderSize = 4 + 1 + 4 + 4;

/// Request message types. A response echoes the request type with
/// kResponseBit set.
enum class MsgType : uint8_t {
  kPing = 0x01,
  kWriteBatch = 0x02,
  kQuery = 0x03,
  kGetLatest = 0x04,
  kAggregateFast = 0x05,
  kMetricsSnapshot = 0x06,
  // Cluster replication (docs/WIRE_PROTOCOL.md §replication): a primary
  // ships chunks of its per-shard ship log to its follower and the
  // follower persists (segment, offset) cursors, so a reconnect resumes
  // exactly where the last acknowledged chunk ended.
  kReplicateBatch = 0x07,
  kReplicationAck = 0x08,
};

inline constexpr uint8_t kResponseBit = 0x80;

/// Number of request types (dense, starting at kPing = 1) — sizes the
/// per-RPC metric arrays.
inline constexpr size_t kNumMsgTypes = 8;

/// Dense [0, kNumMsgTypes) index of a request type, for metric arrays.
inline constexpr size_t MsgTypeIndex(MsgType t) {
  return static_cast<size_t>(t) - 1;
}

/// True when `raw` (with kResponseBit cleared) names a known request type.
bool ValidMsgType(uint8_t raw);

/// Metric label / log name of a request type ("write_batch", "query", ...).
const char* MsgTypeName(MsgType t);

/// Status codes as they travel on the wire.
enum class WireCode : uint8_t {
  kOk = 0,
  kOverloaded = 1,  // admission control shed the request; retryable
  kInvalidArgument = 2,
  kNotFound = 3,
  kCorruption = 4,
  kIOError = 5,
  kNotSupported = 6,
  kOutOfRange = 7,
  kInternal = 8,
};

/// Number of wire status codes (dense, starting at kOk = 0) — the docs
/// golden test walks this range against docs/WIRE_PROTOCOL.md.
inline constexpr size_t kNumWireCodes = 9;

/// Spec / log name of a wire status code ("ok", "overloaded", ...).
const char* WireCodeName(WireCode code);

/// Parsed frame header (the 13 bytes before the payload).
struct FrameHeader {
  MsgType type = MsgType::kPing;
  bool is_response = false;
  uint32_t payload_size = 0;
  uint32_t crc = 0;
};

/// Appends a whole frame (header + payload) for `type` to `out`.
void EncodeFrame(MsgType type, bool is_response, const ByteBuffer& payload,
                 ByteBuffer* out);

/// Parses the fixed-size header. Corruption on bad magic or unknown type;
/// the caller enforces its own payload-size cap and CRC check (the payload
/// has not been read yet).
Status ParseFrameHeader(const uint8_t* header, FrameHeader* out);

/// Verifies `header.crc` against the received payload bytes.
Status CheckPayloadCrc(const FrameHeader& header, const uint8_t* payload,
                       size_t size);

// --- response status --------------------------------------------------------

/// Serializes `st` as the leading wire status of a response payload.
/// Status::Unavailable maps to kWireOverloaded.
void EncodeResponseStatus(const Status& st, ByteBuffer* out);

/// Reads the leading wire status of a response payload into `rpc_status`
/// (OK when the server reported success). Returns non-OK only when the
/// bytes themselves are malformed.
Status DecodeResponseStatus(ByteReader* reader, Status* rpc_status);

// --- request payloads -------------------------------------------------------

struct WriteBatchRequest {
  std::string sensor;
  std::vector<TvPairDouble> points;
};

struct RangeRequest {  // Query and AggregateFast share this shape
  std::string sensor;
  Timestamp t_min = 0;
  Timestamp t_max = 0;
};

struct SensorRequest {  // GetLatest
  std::string sensor;
};

void EncodeWriteBatchRequest(const WriteBatchRequest& req, ByteBuffer* out);
/// Span form: encodes straight from the caller's array, so hot send
/// paths (client pipelining) skip the WriteBatchRequest vector copy.
void EncodeWriteBatchRequest(const std::string& sensor,
                             const TvPairDouble* points, size_t count,
                             ByteBuffer* out);
Status DecodeWriteBatchRequest(const uint8_t* payload, size_t size,
                               WriteBatchRequest* out);

/// Non-owning view of a decoded WriteBatch request: `points` aliases
/// either the payload bytes themselves (the zero-copy fast path — the
/// wire point layout is exactly TvPairDouble on little-endian hosts) or
/// `scratch` when the payload happens to be misaligned / the host is
/// big-endian. Valid only while both the payload and `scratch` live.
struct WriteBatchView {
  std::string sensor;
  const TvPairDouble* points = nullptr;
  size_t count = 0;
};

/// Streaming decode for the server's write path: validates the payload
/// like DecodeWriteBatchRequest but never materializes an owning point
/// vector — the view feeds StorageEngine::WriteMulti spans directly.
Status DecodeWriteBatchView(const uint8_t* payload, size_t size,
                            std::vector<TvPairDouble>* scratch,
                            WriteBatchView* out);

void EncodeRangeRequest(const RangeRequest& req, ByteBuffer* out);
Status DecodeRangeRequest(const uint8_t* payload, size_t size,
                          RangeRequest* out);

void EncodeSensorRequest(const SensorRequest& req, ByteBuffer* out);
Status DecodeSensorRequest(const uint8_t* payload, size_t size,
                           SensorRequest* out);

// --- replication messages ---------------------------------------------------

/// Upper bound on the shard id a ReplicateBatch may carry. The follower
/// sizes its per-source cursor frontier by shard id, so an unbounded
/// wire value would let any connected peer force a huge (or, after
/// size_t wrap, out-of-bounds) resize. Far above any real
/// EngineOptions::shard_count; documented in docs/WIRE_PROTOCOL.md.
inline constexpr uint64_t kMaxReplicationShards = 1024;

/// Byte cap on a replication source_id. The follower embeds the id in
/// its cursor filename (replcursor-<source_id>.bin) and keys its
/// in-memory frontier map by it, so ids are also restricted to
/// [A-Za-z0-9._-] (see ValidSourceId).
inline constexpr size_t kMaxSourceIdBytes = 64;

/// True when `id` is a wire-acceptable source id: non-empty, at most
/// kMaxSourceIdBytes bytes, every byte in [A-Za-z0-9._-]. Keeps path
/// separators and control bytes out of cursor filenames.
bool ValidSourceId(const std::string& id);

/// One shipped chunk of a source node's per-shard ship log (kReplicateBatch
/// request). `groups` is the chunk's flat record stream grouped into
/// consecutive same-sensor runs — a stable grouping, so the follower's
/// apply preserves the source's per-sensor write order (what LWW
/// idempotence of re-shipped records rests on). `end` is the source-side
/// cursor standing after the chunk's last frame; the follower persists it
/// per (source, shard) and returns it as the response body (ShipCursor),
/// so the source's acked frontier is always what the follower has durable.
struct ReplicateBatchRequest {
  std::string source_id;
  uint64_t shard = 0;
  ShipCursor end;
  std::vector<WriteBatchRequest> groups;
};

void EncodeReplicateBatchRequest(const ReplicateBatchRequest& req,
                                 ByteBuffer* out);
Status DecodeReplicateBatchRequest(const uint8_t* payload, size_t size,
                                   ReplicateBatchRequest* out);

/// Cursor handshake (kReplicationAck request): asks the follower for the
/// frontier it has persisted for `source_id` (empty when it never received
/// a chunk). The response body is a ShipFrontier; a (re)connecting source
/// seeks its tailer there and re-ships anything past it.
struct ReplicationAckRequest {
  std::string source_id;
};

void EncodeReplicationAckRequest(const ReplicationAckRequest& req,
                                 ByteBuffer* out);
Status DecodeReplicationAckRequest(const uint8_t* payload, size_t size,
                                   ReplicationAckRequest* out);

// ShipCursor / ShipFrontier travel with their engine-layer codec
// (EncodeShipCursor / EncodeShipFrontier in engine/wal_tailer.h).

// --- response bodies (appended after an OK wire status) ---------------------

void EncodePointList(const std::vector<TvPairDouble>& points, ByteBuffer* out);
Status DecodePointList(ByteReader* reader, std::vector<TvPairDouble>* out);

void EncodePoint(const TvPairDouble& p, ByteBuffer* out);
Status DecodePoint(ByteReader* reader, TvPairDouble* out);

struct AggregateResult {
  TsFileReader::RangeStats stats;
  bool used_fast_path = false;
};

void EncodeAggregateResult(const AggregateResult& r, ByteBuffer* out);
Status DecodeAggregateResult(ByteReader* reader, AggregateResult* out);

}  // namespace backsort

#endif  // BACKSORT_NET_PROTOCOL_H_
