#include "net/protocol.h"

#include <cstddef>
#include <cstring>

#include "common/crc32.h"

namespace backsort {

namespace {

void PutDoubleBits(double v, ByteBuffer* out) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  out->PutFixed64(bits);
}

Status GetDoubleBits(ByteReader* reader, double* out) {
  uint64_t bits = 0;
  RETURN_NOT_OK(reader->GetFixed64(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::OK();
}

Status GetTimestamp(ByteReader* reader, Timestamp* out) {
  uint64_t bits = 0;
  RETURN_NOT_OK(reader->GetFixed64(&bits));
  *out = static_cast<Timestamp>(bits);
  return Status::OK();
}

// The wire point layout (fixed64 LE timestamp + fixed64 LE IEEE-754
// value bits) is byte-identical to the in-memory TvPairDouble on a
// little-endian host, so bulk point runs move as one memcpy in both
// directions; big-endian hosts take the per-field path.
static_assert(sizeof(TvPairDouble) == 16);
static_assert(offsetof(TvPairDouble, t) == 0);
static_assert(offsetof(TvPairDouble, v) == 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
inline constexpr bool kPointsAreWireLayout = true;
#else
inline constexpr bool kPointsAreWireLayout = false;
#endif

void PutPoints(const TvPairDouble* points, size_t count, ByteBuffer* out) {
  if (kPointsAreWireLayout) {
    out->PutBytes(points, count * sizeof(TvPairDouble));
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    out->PutFixed64(static_cast<uint64_t>(points[i].t));
    PutDoubleBits(points[i].v, out);
  }
}

WireCode StatusToWire(const Status& st) {
  switch (st.code()) {
    case Status::Code::kOk:
      return WireCode::kOk;
    case Status::Code::kUnavailable:
      return WireCode::kOverloaded;
    case Status::Code::kInvalidArgument:
      return WireCode::kInvalidArgument;
    case Status::Code::kNotFound:
      return WireCode::kNotFound;
    case Status::Code::kCorruption:
      return WireCode::kCorruption;
    case Status::Code::kIOError:
      return WireCode::kIOError;
    case Status::Code::kNotSupported:
      return WireCode::kNotSupported;
    case Status::Code::kOutOfRange:
      return WireCode::kOutOfRange;
  }
  return WireCode::kInternal;
}

Status WireToStatus(uint8_t code, std::string msg) {
  switch (static_cast<WireCode>(code)) {
    case WireCode::kOk:
      return Status::OK();
    case WireCode::kOverloaded:
      return Status::Unavailable(std::move(msg));
    case WireCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case WireCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case WireCode::kCorruption:
      return Status::Corruption(std::move(msg));
    case WireCode::kIOError:
      return Status::IOError(std::move(msg));
    case WireCode::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case WireCode::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case WireCode::kInternal:
      break;
  }
  return Status::IOError("remote internal error: " + msg);
}

}  // namespace

bool ValidMsgType(uint8_t raw) {
  const uint8_t base = raw & static_cast<uint8_t>(~kResponseBit);
  return base >= static_cast<uint8_t>(MsgType::kPing) &&
         base <= static_cast<uint8_t>(MsgType::kReplicationAck);
}

const char* WireCodeName(WireCode code) {
  switch (code) {
    case WireCode::kOk:
      return "ok";
    case WireCode::kOverloaded:
      return "overloaded";
    case WireCode::kInvalidArgument:
      return "invalid_argument";
    case WireCode::kNotFound:
      return "not_found";
    case WireCode::kCorruption:
      return "corruption";
    case WireCode::kIOError:
      return "io_error";
    case WireCode::kNotSupported:
      return "not_supported";
    case WireCode::kOutOfRange:
      return "out_of_range";
    case WireCode::kInternal:
      return "internal";
  }
  return "unknown";
}

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kPing:
      return "ping";
    case MsgType::kWriteBatch:
      return "write_batch";
    case MsgType::kQuery:
      return "query";
    case MsgType::kGetLatest:
      return "get_latest";
    case MsgType::kAggregateFast:
      return "aggregate_fast";
    case MsgType::kMetricsSnapshot:
      return "metrics_snapshot";
    case MsgType::kReplicateBatch:
      return "replicate_batch";
    case MsgType::kReplicationAck:
      return "replication_ack";
  }
  return "unknown";
}

void EncodeFrame(MsgType type, bool is_response, const ByteBuffer& payload,
                 ByteBuffer* out) {
  out->PutFixed32(kFrameMagic);
  out->PutU8(static_cast<uint8_t>(type) | (is_response ? kResponseBit : 0));
  out->PutFixed32(static_cast<uint32_t>(payload.size()));
  out->PutFixed32(Crc32(payload.data().data(), payload.size()));
  out->Append(payload);
}

Status ParseFrameHeader(const uint8_t* header, FrameHeader* out) {
  ByteReader reader(header, kFrameHeaderSize);
  uint32_t magic = 0;
  RETURN_NOT_OK(reader.GetFixed32(&magic));
  if (magic != kFrameMagic) {
    return Status::Corruption("bad frame magic (not a backsort peer?)");
  }
  uint8_t raw_type = 0;
  RETURN_NOT_OK(reader.GetU8(&raw_type));
  if (!ValidMsgType(raw_type)) {
    return Status::Corruption("unknown message type " +
                              std::to_string(raw_type));
  }
  out->is_response = (raw_type & kResponseBit) != 0;
  out->type =
      static_cast<MsgType>(raw_type & static_cast<uint8_t>(~kResponseBit));
  RETURN_NOT_OK(reader.GetFixed32(&out->payload_size));
  RETURN_NOT_OK(reader.GetFixed32(&out->crc));
  return Status::OK();
}

Status CheckPayloadCrc(const FrameHeader& header, const uint8_t* payload,
                       size_t size) {
  if (Crc32(payload, size) != header.crc) {
    return Status::Corruption("frame payload CRC mismatch");
  }
  return Status::OK();
}

void EncodeResponseStatus(const Status& st, ByteBuffer* out) {
  out->PutU8(static_cast<uint8_t>(StatusToWire(st)));
  out->PutLengthPrefixedString(st.ok() ? std::string() : st.message());
}

Status DecodeResponseStatus(ByteReader* reader, Status* rpc_status) {
  uint8_t code = 0;
  RETURN_NOT_OK(reader->GetU8(&code));
  if (code > static_cast<uint8_t>(WireCode::kInternal)) {
    return Status::Corruption("unknown wire status code " +
                              std::to_string(code));
  }
  std::string msg;
  RETURN_NOT_OK(reader->GetLengthPrefixedString(&msg));
  *rpc_status = WireToStatus(code, std::move(msg));
  return Status::OK();
}

void EncodeWriteBatchRequest(const std::string& sensor,
                             const TvPairDouble* points, size_t count,
                             ByteBuffer* out) {
  out->PutLengthPrefixedString(sensor);
  out->PutVarint64(count);
  PutPoints(points, count, out);
}

void EncodeWriteBatchRequest(const WriteBatchRequest& req, ByteBuffer* out) {
  EncodeWriteBatchRequest(req.sensor, req.points.data(), req.points.size(),
                          out);
}

Status DecodeWriteBatchRequest(const uint8_t* payload, size_t size,
                               WriteBatchRequest* out) {
  ByteReader reader(payload, size);
  RETURN_NOT_OK(reader.GetLengthPrefixedString(&out->sensor));
  uint64_t count = 0;
  RETURN_NOT_OK(reader.GetVarint64(&count));
  // Each point is 16 bytes; a count the remaining bytes cannot hold is
  // malformed, not a reason to allocate.
  if (count > reader.remaining() / 16) {
    return Status::Corruption("write batch count exceeds payload");
  }
  out->points.clear();
  out->points.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    TvPairDouble p{};
    RETURN_NOT_OK(GetTimestamp(&reader, &p.t));
    RETURN_NOT_OK(GetDoubleBits(&reader, &p.v));
    out->points.push_back(p);
  }
  if (!reader.AtEnd()) return Status::Corruption("trailing bytes in request");
  return Status::OK();
}

Status DecodeWriteBatchView(const uint8_t* payload, size_t size,
                            std::vector<TvPairDouble>* scratch,
                            WriteBatchView* out) {
  ByteReader reader(payload, size);
  RETURN_NOT_OK(reader.GetLengthPrefixedString(&out->sensor));
  uint64_t count = 0;
  RETURN_NOT_OK(reader.GetVarint64(&count));
  // Points are exactly the remaining bytes: 16 each, nothing trailing.
  // Divide instead of multiplying so an attacker-chosen count can't wrap.
  if (count > reader.remaining() / 16) {
    return Status::Corruption("write batch count exceeds payload");
  }
  if (count * 16 != reader.remaining()) {
    return Status::Corruption("trailing bytes in request");
  }
  out->count = static_cast<size_t>(count);
  const uint8_t* raw = payload + reader.position();
  if (kPointsAreWireLayout) {
    // An aligned little-endian payload needs no decode at all.
    if (reinterpret_cast<uintptr_t>(raw) % alignof(TvPairDouble) == 0) {
      out->points = reinterpret_cast<const TvPairDouble*>(raw);
      return Status::OK();
    }
    // Misaligned: one bulk relayout into the caller's reusable scratch.
    scratch->resize(out->count);
    std::memcpy(scratch->data(), raw, out->count * sizeof(TvPairDouble));
  } else {
    // Big-endian host: per-field decode into scratch.
    scratch->resize(out->count);
    ByteReader points_reader(raw, reader.remaining());
    for (size_t i = 0; i < out->count; ++i) {
      RETURN_NOT_OK(GetTimestamp(&points_reader, &(*scratch)[i].t));
      RETURN_NOT_OK(GetDoubleBits(&points_reader, &(*scratch)[i].v));
    }
  }
  out->points = scratch->data();
  return Status::OK();
}

void EncodeRangeRequest(const RangeRequest& req, ByteBuffer* out) {
  out->PutLengthPrefixedString(req.sensor);
  out->PutFixed64(static_cast<uint64_t>(req.t_min));
  out->PutFixed64(static_cast<uint64_t>(req.t_max));
}

Status DecodeRangeRequest(const uint8_t* payload, size_t size,
                          RangeRequest* out) {
  ByteReader reader(payload, size);
  RETURN_NOT_OK(reader.GetLengthPrefixedString(&out->sensor));
  RETURN_NOT_OK(GetTimestamp(&reader, &out->t_min));
  RETURN_NOT_OK(GetTimestamp(&reader, &out->t_max));
  if (!reader.AtEnd()) return Status::Corruption("trailing bytes in request");
  return Status::OK();
}

void EncodeSensorRequest(const SensorRequest& req, ByteBuffer* out) {
  out->PutLengthPrefixedString(req.sensor);
}

Status DecodeSensorRequest(const uint8_t* payload, size_t size,
                           SensorRequest* out) {
  ByteReader reader(payload, size);
  RETURN_NOT_OK(reader.GetLengthPrefixedString(&out->sensor));
  if (!reader.AtEnd()) return Status::Corruption("trailing bytes in request");
  return Status::OK();
}

bool ValidSourceId(const std::string& id) {
  if (id.empty() || id.size() > kMaxSourceIdBytes) return false;
  for (const char c : id) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

void EncodeReplicateBatchRequest(const ReplicateBatchRequest& req,
                                 ByteBuffer* out) {
  out->PutLengthPrefixedString(req.source_id);
  out->PutVarint64(req.shard);
  EncodeShipCursor(req.end, out);
  out->PutVarint64(req.groups.size());
  for (const WriteBatchRequest& group : req.groups) {
    EncodeWriteBatchRequest(group, out);
  }
}

Status DecodeReplicateBatchRequest(const uint8_t* payload, size_t size,
                                   ReplicateBatchRequest* out) {
  ByteReader reader(payload, size);
  RETURN_NOT_OK(reader.GetLengthPrefixedString(&out->source_id));
  if (!ValidSourceId(out->source_id)) {
    return Status::InvalidArgument("replicate batch source id invalid");
  }
  RETURN_NOT_OK(reader.GetVarint64(&out->shard));
  // The follower sizes its cursor frontier by this id — an unbounded
  // value would be an arbitrary-resize (or size_t-wrap OOB) primitive
  // for any peer that can connect.
  if (out->shard >= kMaxReplicationShards) {
    return Status::InvalidArgument("replicate batch shard out of range");
  }
  RETURN_NOT_OK(DecodeShipCursor(&reader, &out->end));
  uint64_t group_count = 0;
  RETURN_NOT_OK(reader.GetVarint64(&group_count));
  // A group is at least a 1-byte sensor length + 1-byte point count.
  if (group_count > reader.remaining() / 2) {
    return Status::Corruption("replicate batch group count exceeds payload");
  }
  out->groups.clear();
  out->groups.resize(static_cast<size_t>(group_count));
  for (WriteBatchRequest& group : out->groups) {
    RETURN_NOT_OK(reader.GetLengthPrefixedString(&group.sensor));
    uint64_t count = 0;
    RETURN_NOT_OK(reader.GetVarint64(&count));
    if (count > reader.remaining() / 16) {
      return Status::Corruption("replicate batch count exceeds payload");
    }
    group.points.clear();
    if (kPointsAreWireLayout) {
      group.points.resize(static_cast<size_t>(count));
      RETURN_NOT_OK(reader.GetBytes(group.points.data(),
                                    group.points.size() *
                                        sizeof(TvPairDouble)));
    } else {
      group.points.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        TvPairDouble p{};
        RETURN_NOT_OK(GetTimestamp(&reader, &p.t));
        RETURN_NOT_OK(GetDoubleBits(&reader, &p.v));
        group.points.push_back(p);
      }
    }
  }
  if (!reader.AtEnd()) return Status::Corruption("trailing bytes in request");
  return Status::OK();
}

void EncodeReplicationAckRequest(const ReplicationAckRequest& req,
                                 ByteBuffer* out) {
  out->PutLengthPrefixedString(req.source_id);
}

Status DecodeReplicationAckRequest(const uint8_t* payload, size_t size,
                                   ReplicationAckRequest* out) {
  ByteReader reader(payload, size);
  RETURN_NOT_OK(reader.GetLengthPrefixedString(&out->source_id));
  if (!ValidSourceId(out->source_id)) {
    return Status::InvalidArgument("replication ack source id invalid");
  }
  if (!reader.AtEnd()) return Status::Corruption("trailing bytes in request");
  return Status::OK();
}

void EncodePointList(const std::vector<TvPairDouble>& points,
                     ByteBuffer* out) {
  out->PutVarint64(points.size());
  PutPoints(points.data(), points.size(), out);
}

Status DecodePointList(ByteReader* reader, std::vector<TvPairDouble>* out) {
  uint64_t count = 0;
  RETURN_NOT_OK(reader->GetVarint64(&count));
  if (count > reader->remaining() / 16) {
    return Status::Corruption("point list count exceeds payload");
  }
  out->clear();
  if (kPointsAreWireLayout) {
    out->resize(static_cast<size_t>(count));
    return reader->GetBytes(out->data(), out->size() * sizeof(TvPairDouble));
  }
  out->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    TvPairDouble p{};
    RETURN_NOT_OK(GetTimestamp(reader, &p.t));
    RETURN_NOT_OK(GetDoubleBits(reader, &p.v));
    out->push_back(p);
  }
  return Status::OK();
}

void EncodePoint(const TvPairDouble& p, ByteBuffer* out) {
  out->PutFixed64(static_cast<uint64_t>(p.t));
  PutDoubleBits(p.v, out);
}

Status DecodePoint(ByteReader* reader, TvPairDouble* out) {
  RETURN_NOT_OK(GetTimestamp(reader, &out->t));
  return GetDoubleBits(reader, &out->v);
}

void EncodeAggregateResult(const AggregateResult& r, ByteBuffer* out) {
  out->PutVarint64(r.stats.count);
  PutDoubleBits(r.stats.sum, out);
  PutDoubleBits(r.stats.min, out);
  PutDoubleBits(r.stats.max, out);
  out->PutFixed64(static_cast<uint64_t>(r.stats.first_time));
  PutDoubleBits(r.stats.first, out);
  out->PutFixed64(static_cast<uint64_t>(r.stats.last_time));
  PutDoubleBits(r.stats.last, out);
  out->PutU8(r.used_fast_path ? 1 : 0);
}

Status DecodeAggregateResult(ByteReader* reader, AggregateResult* out) {
  uint64_t count = 0;
  RETURN_NOT_OK(reader->GetVarint64(&count));
  out->stats.count = static_cast<size_t>(count);
  RETURN_NOT_OK(GetDoubleBits(reader, &out->stats.sum));
  RETURN_NOT_OK(GetDoubleBits(reader, &out->stats.min));
  RETURN_NOT_OK(GetDoubleBits(reader, &out->stats.max));
  RETURN_NOT_OK(GetTimestamp(reader, &out->stats.first_time));
  RETURN_NOT_OK(GetDoubleBits(reader, &out->stats.first));
  RETURN_NOT_OK(GetTimestamp(reader, &out->stats.last_time));
  RETURN_NOT_OK(GetDoubleBits(reader, &out->stats.last));
  uint8_t fast = 0;
  RETURN_NOT_OK(reader->GetU8(&fast));
  out->used_fast_path = fast != 0;
  return Status::OK();
}

}  // namespace backsort
