#ifndef BACKSORT_NET_ADMISSION_H_
#define BACKSORT_NET_ADMISSION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace backsort {

/// Bounded in-flight budget — the server's load-shedding valve. Each
/// request tries to reserve one request slot and its payload bytes before
/// dispatching to the engine; when either bound would be exceeded the
/// request is shed with an Overloaded response instead of queueing
/// unboundedly behind a saturated engine. A payload larger than the whole
/// byte budget can never be admitted (the caller reports that
/// deterministically, which the overload tests rely on).
///
/// Lock-free: a single CAS loop packs nothing — requests and bytes are
/// tracked in separate atomics with optimistic acquire + rollback, which
/// can transiently over-count by one in-flight request during a race but
/// never exceeds either bound after rollback. That conservative bias is
/// the right direction for a shedding valve.
class AdmissionController {
 public:
  AdmissionController(size_t max_requests, size_t max_bytes)
      : max_requests_(max_requests), max_bytes_(max_bytes) {}

  /// Reserves one request + `bytes`; false = shed (nothing reserved).
  bool TryAdmit(size_t bytes) {
    const uint64_t r = requests_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (r > max_requests_) {
      requests_.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    const uint64_t b =
        bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (b > max_bytes_) {
      bytes_.fetch_sub(bytes, std::memory_order_relaxed);
      requests_.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// Returns a TryAdmit reservation.
  void Release(size_t bytes) {
    bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    requests_.fetch_sub(1, std::memory_order_relaxed);
  }

  uint64_t inflight_requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t inflight_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  size_t max_requests() const { return max_requests_; }
  size_t max_bytes() const { return max_bytes_; }

 private:
  const uint64_t max_requests_;
  const uint64_t max_bytes_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> bytes_{0};
};

}  // namespace backsort

#endif  // BACKSORT_NET_ADMISSION_H_
