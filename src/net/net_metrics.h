#ifndef BACKSORT_NET_NET_METRICS_H_
#define BACKSORT_NET_NET_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "common/latency_histogram.h"
#include "common/metrics_registry.h"
#include "net/protocol.h"

namespace backsort {

/// Point-in-time view of the server's network counters, shipped to tests
/// and rendered by ExportNetMetrics (metric reference in docs/METRICS.md).
struct NetMetricsSnapshot {
  uint64_t connections_total = 0;   ///< accepted since Start
  uint64_t active_connections = 0;  ///< currently open
  uint64_t bytes_in = 0;            ///< request frame bytes received
  uint64_t bytes_out = 0;           ///< response frame bytes sent
  uint64_t overload_rejections = 0; ///< requests shed with Overloaded
  uint64_t protocol_errors = 0;     ///< malformed frames (connection closed)
  uint64_t inflight_requests = 0;   ///< admission slots held right now
  uint64_t inflight_bytes = 0;      ///< admission bytes held right now
  uint64_t event_loop_wakeups = 0;  ///< epoll_wait returns across all loops
  uint64_t read_pauses = 0;         ///< pipeline-cap read backpressure events
  /// Readiness events delivered per epoll_wait return (event-loop depth).
  HistogramSnapshot event_loop_events;
  /// In-flight pipelined requests on a connection, sampled as each request
  /// frame is decoded (1 = plain request/response traffic).
  HistogramSnapshot pipeline_depth;
  /// Response frames gathered into one writev call (scatter/gather batch
  /// size).
  HistogramSnapshot writev_frames;
  /// Served requests and their round-trip (decode -> response written)
  /// latency, indexed by MsgTypeIndex. Shed requests count in
  /// overload_rejections, not here.
  std::array<uint64_t, kNumMsgTypes> requests_total{};
  std::array<HistogramSnapshot, kNumMsgTypes> request_duration;
};

/// Lock-free network counters shared by the accept loop and every worker
/// (relaxed atomics — same contract as the engine histograms).
struct NetMetrics {
  std::atomic<uint64_t> connections_total{0};
  std::atomic<uint64_t> active_connections{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> overload_rejections{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> event_loop_wakeups{0};
  std::atomic<uint64_t> read_pauses{0};
  LatencyHistogram event_loop_events;
  LatencyHistogram pipeline_depth;
  LatencyHistogram writev_frames;
  std::array<std::atomic<uint64_t>, kNumMsgTypes> requests_total{};
  std::array<LatencyHistogram, kNumMsgTypes> request_ns;

  /// Snapshot without the admission gauges (the server layers those in).
  NetMetricsSnapshot Snapshot() const {
    NetMetricsSnapshot snap;
    snap.connections_total = connections_total.load(std::memory_order_relaxed);
    snap.active_connections =
        active_connections.load(std::memory_order_relaxed);
    snap.bytes_in = bytes_in.load(std::memory_order_relaxed);
    snap.bytes_out = bytes_out.load(std::memory_order_relaxed);
    snap.overload_rejections =
        overload_rejections.load(std::memory_order_relaxed);
    snap.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
    snap.event_loop_wakeups =
        event_loop_wakeups.load(std::memory_order_relaxed);
    snap.read_pauses = read_pauses.load(std::memory_order_relaxed);
    snap.event_loop_events = event_loop_events.Snapshot();
    snap.pipeline_depth = pipeline_depth.Snapshot();
    snap.writev_frames = writev_frames.Snapshot();
    for (size_t i = 0; i < kNumMsgTypes; ++i) {
      snap.requests_total[i] =
          requests_total[i].load(std::memory_order_relaxed);
      snap.request_duration[i] = request_ns[i].Snapshot();
    }
    return snap;
  }
};

/// Renders one network snapshot as `backsort_net_*` registry samples with
/// `base_labels` attached — merged into the same exposition as
/// ExportEngineMetrics (the server's MetricsSnapshot RPC and `bstool
/// serve` both emit engine + net families in one document).
void ExportNetMetrics(const NetMetricsSnapshot& snapshot,
                      const MetricsRegistry::Labels& base_labels,
                      MetricsRegistry* registry);

}  // namespace backsort

#endif  // BACKSORT_NET_NET_METRICS_H_
