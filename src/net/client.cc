#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/crc32.h"

namespace backsort {

namespace {

/// The client caps a response payload well above anything the server
/// sends (a full metrics exposition or a large query result), but low
/// enough that a corrupt length field cannot trigger a huge allocation.
constexpr size_t kMaxResponseBytes = 64u << 20;

}  // namespace

BacksortClient::BacksortClient(ClientOptions options)
    : options_(options),
      rng_(static_cast<uint64_t>(
               std::chrono::steady_clock::now().time_since_epoch().count()) ^
           reinterpret_cast<uintptr_t>(this)) {}

Status BacksortClient::Connect(const std::string& host, uint16_t port) {
  Close();
  ScopedFd fd;
  RETURN_NOT_OK(TcpConnect(host, port, options_.connect_timeout_ms, &fd));
  // Non-blocking from here on: SendAllDeadline / RecvAllDeadline enforce
  // one budget across the whole transfer. (SO_RCVTIMEO would restart per
  // recv() call, so a server dribbling one byte per interval could stall
  // a "10 second" request forever.)
  RETURN_NOT_OK(SetNonBlocking(fd.get(), true));
  fd_ = std::move(fd);
  return Status::OK();
}

Status BacksortClient::Ping() {
  std::vector<uint8_t> response;
  return Call(MsgType::kPing, ByteBuffer(), &response);
}

Status BacksortClient::WriteBatch(const std::string& sensor,
                                  const std::vector<TvPairDouble>& points) {
  ByteBuffer payload;
  EncodeWriteBatchRequest(sensor, points.data(), points.size(), &payload);
  std::vector<uint8_t> response;
  return Call(MsgType::kWriteBatch, payload, &response);
}

Status BacksortClient::Query(const std::string& sensor, Timestamp t_min,
                             Timestamp t_max,
                             std::vector<TvPairDouble>* out) {
  RangeRequest req{sensor, t_min, t_max};
  ByteBuffer payload;
  EncodeRangeRequest(req, &payload);
  std::vector<uint8_t> response;
  RETURN_NOT_OK(Call(MsgType::kQuery, payload, &response));
  ByteReader reader(response);
  RETURN_NOT_OK(DecodePointList(&reader, out));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in query response");
  }
  return Status::OK();
}

Status BacksortClient::GetLatest(const std::string& sensor,
                                 TvPairDouble* out) {
  SensorRequest req{sensor};
  ByteBuffer payload;
  EncodeSensorRequest(req, &payload);
  std::vector<uint8_t> response;
  RETURN_NOT_OK(Call(MsgType::kGetLatest, payload, &response));
  ByteReader reader(response);
  RETURN_NOT_OK(DecodePoint(&reader, out));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in get-latest response");
  }
  return Status::OK();
}

Status BacksortClient::AggregateFast(const std::string& sensor,
                                     Timestamp t_min, Timestamp t_max,
                                     TsFileReader::RangeStats* stats,
                                     bool* used_fast_path) {
  RangeRequest req{sensor, t_min, t_max};
  ByteBuffer payload;
  EncodeRangeRequest(req, &payload);
  std::vector<uint8_t> response;
  RETURN_NOT_OK(Call(MsgType::kAggregateFast, payload, &response));
  ByteReader reader(response);
  AggregateResult result;
  RETURN_NOT_OK(DecodeAggregateResult(&reader, &result));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in aggregate response");
  }
  *stats = result.stats;
  if (used_fast_path != nullptr) *used_fast_path = result.used_fast_path;
  return Status::OK();
}

Status BacksortClient::MetricsSnapshot(std::string* exposition) {
  std::vector<uint8_t> response;
  RETURN_NOT_OK(Call(MsgType::kMetricsSnapshot, ByteBuffer(), &response));
  ByteReader reader(response);
  RETURN_NOT_OK(reader.GetLengthPrefixedString(exposition));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in metrics response");
  }
  return Status::OK();
}

Status BacksortClient::ReplicateChunk(const ReplicateBatchRequest& req,
                                      ShipCursor* acked,
                                      size_t* wire_bytes) {
  ByteBuffer payload;
  EncodeReplicateBatchRequest(req, &payload);
  if (wire_bytes != nullptr) *wire_bytes = payload.size();
  std::vector<uint8_t> response;
  RETURN_NOT_OK(Call(MsgType::kReplicateBatch, payload, &response));
  ByteReader reader(response);
  RETURN_NOT_OK(DecodeShipCursor(&reader, acked));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in replicate response");
  }
  return Status::OK();
}

Status BacksortClient::FetchReplicationCursor(const std::string& source_id,
                                              ShipFrontier* frontier) {
  ReplicationAckRequest req{source_id};
  ByteBuffer payload;
  EncodeReplicationAckRequest(req, &payload);
  std::vector<uint8_t> response;
  RETURN_NOT_OK(Call(MsgType::kReplicationAck, payload, &response));
  ByteReader reader(response);
  RETURN_NOT_OK(DecodeShipFrontier(&reader, frontier));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in replication-ack response");
  }
  return Status::OK();
}

Status BacksortClient::PipelineWriteBatch(
    const std::string& sensor, const std::vector<TvPairDouble>& points) {
  if (!fd_.valid()) return Status::InvalidArgument("client not connected");
  // Encode the frame in place in the cork buffer: header with size/CRC
  // placeholders, payload straight from the caller's array, then patch
  // the two fields — no intermediate payload or frame copy.
  const size_t frame_off = sendbuf_.size();
  sendbuf_.PutFixed32(kFrameMagic);
  sendbuf_.PutU8(static_cast<uint8_t>(MsgType::kWriteBatch));
  sendbuf_.PutFixed32(0);  // payload size, patched below
  sendbuf_.PutFixed32(0);  // payload CRC, patched below
  const size_t payload_off = sendbuf_.size();
  EncodeWriteBatchRequest(sensor, points.data(), points.size(), &sendbuf_);
  const size_t payload_size = sendbuf_.size() - payload_off;
  sendbuf_.PatchFixed32(frame_off + 5, static_cast<uint32_t>(payload_size));
  sendbuf_.PatchFixed32(
      frame_off + 9,
      Crc32(sendbuf_.data().data() + payload_off, payload_size));
  pending_.push_back(MsgType::kWriteBatch);
  // Flush once the cork holds a socket-buffer-sized burst; smaller
  // residue ships when the next drain needs responses to exist.
  constexpr size_t kCorkFlushBytes = 64 * 1024;
  if (sendbuf_.size() >= kCorkFlushBytes) {
    return FlushPipeline(RequestDeadline());
  }
  return Status::OK();
}

Status BacksortClient::FlushPipeline(int64_t deadline_ms) {
  if (sendbuf_.size() == 0) return Status::OK();
  const Status st = SendAllDeadline(fd_.get(), sendbuf_.data().data(),
                                   sendbuf_.size(), deadline_ms);
  sendbuf_.Clear();
  if (!st.ok()) Close();
  return st;
}

Status BacksortClient::PipelineDrain(size_t target_depth) {
  if (pending_.size() > target_depth) {
    RETURN_NOT_OK(FlushPipeline(RequestDeadline()));
  }
  Status first;
  while (pending_.size() > target_depth) {
    const MsgType type = pending_.front();
    const Status st = RecvResponse(type, RequestDeadline(), nullptr);
    if (!connected()) return st;  // transport failure; pipeline discarded
    pending_.pop_front();
    if (st.IsUnavailable()) ++overload_retries_;
    if (first.ok() && !st.ok()) first = st;
  }
  return first;
}

Status BacksortClient::Call(MsgType type, const ByteBuffer& request_payload,
                            std::vector<uint8_t>* response) {
  if (!pending_.empty()) {
    return Status::InvalidArgument(
        "pipelined requests pending; PipelineDrain before calling");
  }
  int backoff_ms = options_.backoff_initial_ms;
  for (int attempt = 0;; ++attempt) {
    Status st = CallOnce(type, request_payload, response);
    if (!st.IsUnavailable()) return st;
    ++overload_retries_;
    if (attempt >= options_.max_retries) return st;
    // Jitter the sleep so shed clients spread out instead of re-arriving
    // in the same lockstep burst that got them shed.
    const double j = std::clamp(options_.backoff_jitter, 0.0, 1.0);
    const double factor = 1.0 - j + 2.0 * j * rng_.NextDouble();
    const auto sleep_ms =
        static_cast<int64_t>(static_cast<double>(backoff_ms) * factor);
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff_ms *= 2;
  }
}

Status BacksortClient::CallOnce(MsgType type,
                                const ByteBuffer& request_payload,
                                std::vector<uint8_t>* response) {
  // One deadline spans the entire round trip: encode, send every request
  // byte AND receive every response byte.
  const int64_t deadline_ms = RequestDeadline();
  RETURN_NOT_OK(SendRequest(type, request_payload, deadline_ms));
  return RecvResponse(type, deadline_ms, response);
}

int64_t BacksortClient::RequestDeadline() const {
  return options_.request_timeout_ms > 0
             ? MonotonicMillis() + options_.request_timeout_ms
             : -1;
}

Status BacksortClient::SendRequest(MsgType type,
                                   const ByteBuffer& request_payload,
                                   int64_t deadline_ms) {
  if (!fd_.valid()) return Status::InvalidArgument("client not connected");
  ByteBuffer frame;
  EncodeFrame(type, /*is_response=*/false, request_payload, &frame);
  const Status st =
      SendAllDeadline(fd_.get(), frame.data().data(), frame.size(),
                      deadline_ms);
  if (!st.ok()) Close();
  return st;
}

Status BacksortClient::RecvBuffered(void* dst, size_t n,
                                    int64_t deadline_ms) {
  while (rbuf_.size() - rpos_ < n) {
    // Compact the consumed prefix before growing, mirroring the server's
    // EnsureReadCapacity: a long pipeline drain of many small responses
    // rarely lands on an exact frame boundary at refill time, and
    // appending forever would retain nearly every byte of the drain. The
    // unconsumed tail is at most one partial frame, so the move is cheap.
    if (rpos_ > 0) {
      rbuf_.erase(rbuf_.begin(), rbuf_.begin() + static_cast<long>(rpos_));
      rpos_ = 0;
    }
    constexpr size_t kRecvChunk = 64 * 1024;
    const size_t old = rbuf_.size();
    rbuf_.resize(old + std::max(n, kRecvChunk));
    size_t got = 0;
    const Status st = RecvSomeDeadline(fd_.get(), rbuf_.data() + old,
                                       rbuf_.size() - old, &got, deadline_ms);
    rbuf_.resize(old + got);
    RETURN_NOT_OK(st);
  }
  std::memcpy(dst, rbuf_.data() + rpos_, n);
  rpos_ += n;
  return Status::OK();
}

Status BacksortClient::RecvResponse(MsgType type, int64_t deadline_ms,
                                    std::vector<uint8_t>* response) {
  if (!fd_.valid()) return Status::InvalidArgument("client not connected");

  uint8_t header_bytes[kFrameHeaderSize];
  Status st = RecvBuffered(header_bytes, kFrameHeaderSize, deadline_ms);
  if (!st.ok()) {
    Close();
    return st;
  }
  FrameHeader header;
  st = ParseFrameHeader(header_bytes, &header);
  if (st.ok() && (!header.is_response || header.type != type)) {
    st = Status::Corruption("response frame does not match request");
  }
  if (st.ok() && header.payload_size > kMaxResponseBytes) {
    st = Status::Corruption("response payload exceeds sanity cap");
  }
  if (!st.ok()) {
    Close();
    return st;
  }
  std::vector<uint8_t> local;
  std::vector<uint8_t>* payload = response != nullptr ? response : &local;
  payload->resize(header.payload_size);
  st = RecvBuffered(payload->data(), payload->size(), deadline_ms);
  if (!st.ok()) {
    Close();
    return st;
  }
  st = CheckPayloadCrc(header, payload->data(), payload->size());
  if (!st.ok()) {
    Close();
    return st;
  }

  // Peel the leading wire status; the caller sees only the body bytes.
  ByteReader reader(*payload);
  Status rpc_status;
  st = DecodeResponseStatus(&reader, &rpc_status);
  if (!st.ok()) {
    Close();
    return st;
  }
  payload->erase(payload->begin(),
                 payload->begin() + static_cast<long>(reader.position()));
  return rpc_status;
}

}  // namespace backsort
