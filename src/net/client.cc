#include "net/client.h"

#include <chrono>
#include <thread>

namespace backsort {

namespace {

/// The client caps a response payload well above anything the server
/// sends (a full metrics exposition or a large query result), but low
/// enough that a corrupt length field cannot trigger a huge allocation.
constexpr size_t kMaxResponseBytes = 64u << 20;

}  // namespace

Status BacksortClient::Connect(const std::string& host, uint16_t port) {
  Close();
  ScopedFd fd;
  RETURN_NOT_OK(TcpConnect(host, port, options_.connect_timeout_ms, &fd));
  RETURN_NOT_OK(SetSocketTimeouts(fd.get(), options_.request_timeout_ms,
                                  options_.request_timeout_ms));
  fd_ = std::move(fd);
  return Status::OK();
}

Status BacksortClient::Ping() {
  std::vector<uint8_t> response;
  return Call(MsgType::kPing, ByteBuffer(), &response);
}

Status BacksortClient::WriteBatch(const std::string& sensor,
                                  const std::vector<TvPairDouble>& points) {
  WriteBatchRequest req;
  req.sensor = sensor;
  req.points = points;
  ByteBuffer payload;
  EncodeWriteBatchRequest(req, &payload);
  std::vector<uint8_t> response;
  return Call(MsgType::kWriteBatch, payload, &response);
}

Status BacksortClient::Query(const std::string& sensor, Timestamp t_min,
                             Timestamp t_max,
                             std::vector<TvPairDouble>* out) {
  RangeRequest req{sensor, t_min, t_max};
  ByteBuffer payload;
  EncodeRangeRequest(req, &payload);
  std::vector<uint8_t> response;
  RETURN_NOT_OK(Call(MsgType::kQuery, payload, &response));
  ByteReader reader(response);
  RETURN_NOT_OK(DecodePointList(&reader, out));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in query response");
  }
  return Status::OK();
}

Status BacksortClient::GetLatest(const std::string& sensor,
                                 TvPairDouble* out) {
  SensorRequest req{sensor};
  ByteBuffer payload;
  EncodeSensorRequest(req, &payload);
  std::vector<uint8_t> response;
  RETURN_NOT_OK(Call(MsgType::kGetLatest, payload, &response));
  ByteReader reader(response);
  RETURN_NOT_OK(DecodePoint(&reader, out));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in get-latest response");
  }
  return Status::OK();
}

Status BacksortClient::AggregateFast(const std::string& sensor,
                                     Timestamp t_min, Timestamp t_max,
                                     TsFileReader::RangeStats* stats,
                                     bool* used_fast_path) {
  RangeRequest req{sensor, t_min, t_max};
  ByteBuffer payload;
  EncodeRangeRequest(req, &payload);
  std::vector<uint8_t> response;
  RETURN_NOT_OK(Call(MsgType::kAggregateFast, payload, &response));
  ByteReader reader(response);
  AggregateResult result;
  RETURN_NOT_OK(DecodeAggregateResult(&reader, &result));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in aggregate response");
  }
  *stats = result.stats;
  if (used_fast_path != nullptr) *used_fast_path = result.used_fast_path;
  return Status::OK();
}

Status BacksortClient::MetricsSnapshot(std::string* exposition) {
  std::vector<uint8_t> response;
  RETURN_NOT_OK(Call(MsgType::kMetricsSnapshot, ByteBuffer(), &response));
  ByteReader reader(response);
  RETURN_NOT_OK(reader.GetLengthPrefixedString(exposition));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in metrics response");
  }
  return Status::OK();
}

Status BacksortClient::Call(MsgType type, const ByteBuffer& request_payload,
                            std::vector<uint8_t>* response) {
  int backoff_ms = options_.backoff_initial_ms;
  for (int attempt = 0;; ++attempt) {
    Status st = CallOnce(type, request_payload, response);
    if (!st.IsUnavailable()) return st;
    ++overload_retries_;
    if (attempt >= options_.max_retries) return st;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms *= 2;
  }
}

Status BacksortClient::CallOnce(MsgType type,
                                const ByteBuffer& request_payload,
                                std::vector<uint8_t>* response) {
  if (!fd_.valid()) return Status::InvalidArgument("client not connected");

  ByteBuffer frame;
  EncodeFrame(type, /*is_response=*/false, request_payload, &frame);
  Status st = SendAll(fd_.get(), frame.data().data(), frame.size());
  if (!st.ok()) {
    Close();
    return st;
  }

  uint8_t header_bytes[kFrameHeaderSize];
  st = RecvAll(fd_.get(), header_bytes, kFrameHeaderSize, nullptr);
  if (!st.ok()) {
    Close();
    return st;
  }
  FrameHeader header;
  st = ParseFrameHeader(header_bytes, &header);
  if (st.ok() && (!header.is_response || header.type != type)) {
    st = Status::Corruption("response frame does not match request");
  }
  if (st.ok() && header.payload_size > kMaxResponseBytes) {
    st = Status::Corruption("response payload exceeds sanity cap");
  }
  if (!st.ok()) {
    Close();
    return st;
  }
  response->resize(header.payload_size);
  st = RecvAll(fd_.get(), response->data(), response->size(), nullptr);
  if (!st.ok()) {
    Close();
    return st;
  }
  st = CheckPayloadCrc(header, response->data(), response->size());
  if (!st.ok()) {
    Close();
    return st;
  }

  // Peel the leading wire status; the caller sees only the body bytes.
  ByteReader reader(*response);
  Status rpc_status;
  st = DecodeResponseStatus(&reader, &rpc_status);
  if (!st.ok()) {
    Close();
    return st;
  }
  response->erase(response->begin(),
                  response->begin() + static_cast<long>(reader.position()));
  return rpc_status;
}

}  // namespace backsort
