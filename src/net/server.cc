#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <utility>

#include "common/timer.h"

namespace backsort {

BacksortServer::BacksortServer(EngineOptions engine_options,
                               ServerOptions options)
    : engine_options_(std::move(engine_options)),
      options_(std::move(options)),
      admission_(options_.max_inflight_requests,
                 options_.max_inflight_bytes) {}

BacksortServer::~BacksortServer() { Stop(); }

Status BacksortServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  engine_ = std::make_unique<StorageEngine>(engine_options_);
  Status st = engine_->Open();
  if (!st.ok()) {
    engine_.reset();
    return st;
  }
  st = listener_.Open(options_.host, options_.port,
                      /*backlog=*/128);
  if (!st.ok()) {
    engine_.reset();
    return st;
  }
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void BacksortServer::Stop() {
  if (!started_ || stopped_) return;
  {
    // Set under queue_mu_: a worker that evaluated the wait predicate
    // with stopping_=false is still holding the lock until it blocks, so
    // it cannot slip between this store and the notify below and miss
    // the only wakeup.
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_.store(true, std::memory_order_release);
  }
  // Wake the accept loop without closing the listener fd — the accept
  // thread still reads it until joined below.
  listener_.Shutdown();
  {
    // Wake workers blocked mid-recv; their write side stays open so the
    // request already being served still gets its response.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : serving_fds_) ShutdownRead(fd);
  }
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    metrics_.active_connections.fetch_sub(pending_.size(),
                                          std::memory_order_relaxed);
    pending_.clear();  // never-served connections just close
  }
  stopped_ = true;
}

NetMetricsSnapshot BacksortServer::GetNetMetrics() const {
  NetMetricsSnapshot snap = metrics_.Snapshot();
  snap.inflight_requests = admission_.inflight_requests();
  snap.inflight_bytes = admission_.inflight_bytes();
  return snap;
}

std::string BacksortServer::RenderMetricsExposition() {
  MetricsRegistry registry;
  ExportEngineMetrics(engine_->GetMetricsSnapshot(), /*base_labels=*/{},
                      /*include_traces=*/false, &registry);
  ExportNetMetrics(GetNetMetrics(), /*base_labels=*/{}, &registry);
  return registry.RenderPrometheus();
}

void BacksortServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    ScopedFd conn;
    if (!listener_.Accept(&conn).ok()) {
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;  // transient accept error (e.g. peer reset in the backlog)
    }
    metrics_.connections_total.fetch_add(1, std::memory_order_relaxed);
    (void)SetSocketTimeouts(conn.get(), options_.conn_recv_timeout_ms,
                            options_.conn_send_timeout_ms);
    int one = 1;
    ::setsockopt(conn.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (pending_.size() >= options_.max_pending_connections) {
        // Shed at the door: the worker pool is saturated and the waiting
        // room is full. Closing is the only safe answer — queueing more
        // would hide the overload from the client.
        metrics_.overload_rejections.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      metrics_.active_connections.fetch_add(1, std::memory_order_relaxed);
      pending_.push_back(std::move(conn));
    }
    queue_cv_.notify_one();
  }
}

void BacksortServer::WorkerLoop() {
  while (true) {
    ScopedFd conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      conn = std::move(pending_.front());
      pending_.pop_front();
    }
    ServeConnection(std::move(conn));
  }
}

void BacksortServer::ServeConnection(ScopedFd conn) {
  const int fd = conn.get();
  RegisterConn(fd);
  std::vector<uint8_t> payload;
  while (!stopping_.load(std::memory_order_acquire)) {
    uint8_t header_bytes[kFrameHeaderSize];
    bool clean_eof = false;
    Status st = RecvAll(fd, header_bytes, kFrameHeaderSize, &clean_eof);
    if (!st.ok()) {
      // A peer close between frames is the normal end of a connection;
      // anything else (EOF mid-header, timeout, reset) is a torn frame.
      if (!clean_eof) {
        metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    FrameHeader header;
    st = ParseFrameHeader(header_bytes, &header);
    if (!st.ok() || header.is_response ||
        header.payload_size > options_.max_frame_bytes) {
      metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    payload.resize(header.payload_size);
    st = RecvAll(fd, payload.data(), payload.size(), nullptr);
    if (!st.ok()) {
      metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    metrics_.bytes_in.fetch_add(kFrameHeaderSize + payload.size(),
                                std::memory_order_relaxed);
    st = CheckPayloadCrc(header, payload.data(), payload.size());
    if (!st.ok()) {
      metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (!HandleRequest(fd, header, payload)) break;
  }
  UnregisterConn(fd);
  metrics_.active_connections.fetch_sub(1, std::memory_order_relaxed);
}

bool BacksortServer::HandleRequest(int fd, const FrameHeader& header,
                                   const std::vector<uint8_t>& payload) {
  if (!admission_.TryAdmit(payload.size())) {
    metrics_.overload_rejections.fetch_add(1, std::memory_order_relaxed);
    const Status shed = Status::Unavailable(
        "server overloaded: in-flight budget exhausted, retry with backoff");
    return WriteResponse(fd, header.type, shed, ByteBuffer()).ok();
  }
  WallTimer timer;
  ByteBuffer body;
  const Status rpc = Dispatch(header.type, payload, &body);
  // Count before the response is written: a client that has received its
  // reply must be able to observe the incremented counter in a snapshot.
  const size_t idx = MsgTypeIndex(header.type);
  metrics_.requests_total[idx].fetch_add(1, std::memory_order_relaxed);
  const Status sent = WriteResponse(fd, header.type, rpc, body);
  admission_.Release(payload.size());
  metrics_.request_ns[idx].Record(timer.ElapsedNanos());
  return sent.ok();
}

Status BacksortServer::Dispatch(MsgType type,
                                const std::vector<uint8_t>& payload,
                                ByteBuffer* body) {
  switch (type) {
    case MsgType::kPing:
      return Status::OK();
    case MsgType::kWriteBatch: {
      WriteBatchRequest req;
      RETURN_NOT_OK(DecodeWriteBatchRequest(payload.data(), payload.size(),
                                            &req));
      return engine_->WriteBatch(req.sensor, req.points);
    }
    case MsgType::kQuery: {
      RangeRequest req;
      RETURN_NOT_OK(DecodeRangeRequest(payload.data(), payload.size(), &req));
      std::vector<TvPairDouble> points;
      RETURN_NOT_OK(engine_->Query(req.sensor, req.t_min, req.t_max, &points));
      EncodePointList(points, body);
      return Status::OK();
    }
    case MsgType::kGetLatest: {
      SensorRequest req;
      RETURN_NOT_OK(DecodeSensorRequest(payload.data(), payload.size(), &req));
      TvPairDouble latest;
      RETURN_NOT_OK(engine_->GetLatest(req.sensor, &latest));
      EncodePoint(latest, body);
      return Status::OK();
    }
    case MsgType::kAggregateFast: {
      RangeRequest req;
      RETURN_NOT_OK(DecodeRangeRequest(payload.data(), payload.size(), &req));
      AggregateResult result;
      RETURN_NOT_OK(engine_->AggregateFast(req.sensor, req.t_min, req.t_max,
                                           &result.stats,
                                           &result.used_fast_path));
      EncodeAggregateResult(result, body);
      return Status::OK();
    }
    case MsgType::kMetricsSnapshot: {
      body->PutLengthPrefixedString(RenderMetricsExposition());
      return Status::OK();
    }
  }
  // Unreachable: ParseFrameHeader rejects unknown types before dispatch.
  return Status::InvalidArgument("unhandled message type");
}

Status BacksortServer::WriteResponse(int fd, MsgType type,
                                     const Status& rpc_status,
                                     const ByteBuffer& body) {
  ByteBuffer payload;
  EncodeResponseStatus(rpc_status, &payload);
  if (rpc_status.ok()) payload.Append(body);
  ByteBuffer frame;
  EncodeFrame(type, /*is_response=*/true, payload, &frame);
  RETURN_NOT_OK(SendAll(fd, frame.data().data(), frame.size()));
  metrics_.bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
  return Status::OK();
}

void BacksortServer::RegisterConn(int fd) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  serving_fds_.insert(fd);
  // Stop() may have swept serving_fds_ before this connection arrived in
  // it; re-check so a late registrant still gets its read side woken.
  if (stopping_.load(std::memory_order_acquire)) ShutdownRead(fd);
}

void BacksortServer::UnregisterConn(int fd) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  serving_fds_.erase(fd);
}

}  // namespace backsort
