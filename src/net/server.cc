#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/crc32.h"
#include "common/timer.h"

namespace backsort {

namespace {

/// Bytes of free frame-assembly space guaranteed before each recv.
constexpr size_t kReadChunk = 64 * 1024;

/// recv rounds per readiness event, so one fat connection cannot starve
/// its loop siblings (level-triggered epoll re-signals leftover data).
constexpr int kMaxReadRounds = 4;

/// iovec entries gathered per writev (2 per frame: header + payload).
constexpr size_t kMaxIov = 64;

/// Shrink a connection's read buffer back down once a large frame has
/// been consumed, so one historic 16 MiB frame doesn't pin that much
/// memory for the connection's lifetime.
constexpr size_t kReadBufferShrinkThreshold = 1024 * 1024;

}  // namespace

/// One response in a connection's pipeline, created at request-decode
/// time so responses are written in request order regardless of worker
/// completion order. The owning event loop appends/pops; a worker thread
/// fills `payload`/`header` and then publishes with the `ready` release
/// store — the loop reads them only after its acquire load.
struct BacksortServer::ResponseSlot {
  explicit ResponseSlot(MsgType t) : type(t) {}

  const MsgType type;
  std::atomic<bool> ready{false};
  uint8_t header[kFrameHeaderSize];
  ByteBuffer payload;  ///< wire status + body (CRC'd together)
  size_t offset = 0;   ///< bytes of header+payload already written

  size_t total() const { return kFrameHeaderSize + payload.size(); }
};

/// Per-connection state, owned by exactly one event loop. Workers only
/// ever touch `executing` (atomic) and the slots handed to them; all
/// other fields are loop-thread private.
struct BacksortServer::Connection {
  explicit Connection(ScopedFd fd_in) : fd(std::move(fd_in)) {}

  ScopedFd fd;
  EventLoop* loop = nullptr;

  /// Frame-assembly buffer: [rpos, wpos) holds unparsed bytes.
  std::vector<uint8_t> rbuf;
  size_t rpos = 0;
  size_t wpos = 0;

  /// Pipeline, in request order. Popped from the front once written.
  std::deque<std::unique_ptr<ResponseSlot>> slots;
  /// Requests queued or running on the worker pool for this connection.
  std::atomic<size_t> executing{0};

  bool read_paused = false;   ///< pipeline cap reached; EPOLLIN dropped
  bool draining = false;      ///< no more reads; close once slots flush
  bool want_write = false;    ///< EPOLLOUT armed (short writev)
  bool resume_parse = false;  ///< unpaused with unparsed bytes buffered

  int64_t last_activity_ms = 0;
  int64_t write_blocked_since_ms = -1;
};

/// One epoll readiness thread. Owns a disjoint subset of the connections:
/// non-blocking reads, frame parsing, request submission, and in-order
/// writev response flushing all happen on this thread; workers hand
/// completed slots back through PostCompletion + the eventfd.
class BacksortServer::EventLoop {
 public:
  explicit EventLoop(BacksortServer* server) : server_(server) {}

  ~EventLoop() { Join(); }

  Status Open() {
    epoll_fd_ = ScopedFd(::epoll_create1(0));
    if (!epoll_fd_.valid()) {
      return Status::IOError(std::string("epoll_create1: ") +
                             std::strerror(errno));
    }
    wake_fd_ = ScopedFd(::eventfd(0, EFD_NONBLOCK));
    if (!wake_fd_.valid()) {
      return Status::IOError(std::string("eventfd: ") +
                             std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_.get();
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) !=
        0) {
      return Status::IOError(std::string("epoll_ctl(wakeup): ") +
                             std::strerror(errno));
    }
    return Status::OK();
  }

  void StartThread() {
    thread_ = std::thread([this] { Run(); });
  }

  // Both producers wake the loop only on the empty -> non-empty
  // transition: the loop swaps the whole queue out under mu_, so one
  // eventfd write covers every entry that lands before the swap. Under a
  // pipelined burst this collapses hundreds of wake syscalls into one.

  /// Accept thread: hands over a fresh (already non-blocking) socket.
  void AddConnection(ScopedFd conn) {
    bool was_empty;
    {
      std::lock_guard<std::mutex> lock(mu_);
      was_empty = incoming_.empty();
      incoming_.push_back(std::move(conn));
    }
    if (was_empty) Wake();
  }

  /// Worker threads: a slot for `conn` became ready.
  void PostCompletion(std::shared_ptr<Connection> conn) {
    bool was_empty;
    {
      std::lock_guard<std::mutex> lock(mu_);
      was_empty = completions_.empty();
      completions_.push_back(std::move(conn));
    }
    if (was_empty) Wake();
  }

  /// Stop(): server_->stopping_ is already set; just wake the loop.
  void RequestStop() { Wake(); }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Wake() {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(wake_fd_.get(), &one, sizeof(one));
  }

  void Run() {
    std::array<epoll_event, 64> events;
    while (true) {
      const int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                                 static_cast<int>(events.size()), 200);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // fatal epoll failure; Stop() still joins cleanly
      }
      NetMetrics& m = server_->metrics_;
      m.event_loop_wakeups.fetch_add(1, std::memory_order_relaxed);
      if (n > 0) m.event_loop_events.Record(n);
      for (int i = 0; i < n; ++i) {
        const epoll_event& ev = events[i];
        if (ev.data.fd == wake_fd_.get()) {
          uint64_t drained = 0;
          while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
          }
          continue;
        }
        auto it = conns_.find(ev.data.fd);
        if (it == conns_.end()) continue;  // closed earlier this batch
        std::shared_ptr<Connection> conn = it->second;
        if (ev.events & (EPOLLERR | EPOLLHUP)) {
          // The transport is dead in at least one direction; responses
          // can no longer be delivered reliably. A tear mid-stream is a
          // protocol error (same accounting as a failed recv); a drain
          // that was already underway is not.
          if (!conn->draining) {
            m.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          }
          CloseConnection(conn);
          continue;
        }
        // ServiceBuffered, not a bare flush: if the flush drops the
        // pipeline below the cap it un-pauses reads with complete frames
        // possibly still buffered in rbuf, and only the parse loop can
        // decode those — the kernel has no residual data, so
        // level-triggered EPOLLIN would never re-fire for them.
        if (ev.events & EPOLLOUT) ServiceBuffered(conn.get());
        if (!conn->fd.valid()) continue;
        if (ev.events & (EPOLLIN | EPOLLRDHUP)) HandleReadable(conn);
      }
      HandleCompletions();
      RegisterIncoming();
      const int64_t now = MonotonicMillis();
      MaybeEnterStopping(now);
      SweepTimeouts(now);
      if (stopping_) {
        if (conns_.empty()) break;
        if (drain_deadline_ms_ >= 0 && now > drain_deadline_ms_) {
          // Drain budget exhausted: whoever still has pending bytes is
          // not consuming them. The exit cleanup below closes everything.
          break;
        }
      }
    }
    // Common exit cleanup, reached from every break (graceful drain,
    // exhausted drain budget, or a fatal epoll_wait failure). A fatal
    // failure exits before MaybeEnterStopping ever ran for this loop, so
    // the drained count must still be published here — otherwise
    // WorkerLoop's exit predicate (loops_drained_ == loops_.size()) never
    // becomes true and Stop() blocks forever joining the workers. The
    // surviving connections are closed so their sockets aren't leaked.
    if (!conns_.empty()) {
      std::vector<std::shared_ptr<Connection>> victims;
      victims.reserve(conns_.size());
      for (auto& [fd, c] : conns_) victims.push_back(c);
      for (auto& c : victims) CloseConnection(c);
    }
    if (!stopping_) {
      stopping_ = true;
      server_->loops_drained_.fetch_add(1, std::memory_order_release);
    }
  }

  void RegisterIncoming() {
    std::vector<ScopedFd> fresh;
    {
      std::lock_guard<std::mutex> lock(mu_);
      fresh.swap(incoming_);
    }
    for (ScopedFd& fd : fresh) {
      auto conn = std::make_shared<Connection>(std::move(fd));
      conn->loop = this;
      conn->last_activity_ms = MonotonicMillis();
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLRDHUP;
      ev.data.fd = conn->fd.get();
      if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, conn->fd.get(), &ev) !=
          0) {
        server_->open_connections_.fetch_sub(1, std::memory_order_relaxed);
        server_->metrics_.active_connections.fetch_sub(
            1, std::memory_order_relaxed);
        continue;  // socket closes via ScopedFd
      }
      conns_[conn->fd.get()] = conn;
      // A connection registered mid-shutdown is drained immediately: it
      // gets no service, but closes cleanly.
      if (stopping_) BeginDrain(conn.get());
    }
  }

  void HandleCompletions() {
    std::vector<std::shared_ptr<Connection>> done;
    {
      std::lock_guard<std::mutex> lock(mu_);
      done.swap(completions_);
    }
    for (auto& conn : done) {
      if (!conn->fd.valid()) continue;  // closed while the worker ran
      ServiceBuffered(conn.get());
    }
  }

  /// Parse/flush until quiescent. FlushResponses may un-pause reads with
  /// complete frames still sitting in rbuf; those must be decoded now —
  /// the kernel has no data left, so epoll would never re-signal them.
  void ServiceBuffered(Connection* conn) {
    while (conn->fd.valid()) {
      ParseFrames(conn);
      FlushResponses(conn);
      if (!conn->resume_parse) break;
      conn->resume_parse = false;
    }
  }

  void HandleReadable(const std::shared_ptr<Connection>& conn) {
    NetMetrics& m = server_->metrics_;
    for (int round = 0; round < kMaxReadRounds; ++round) {
      if (conn->draining || conn->read_paused || !conn->fd.valid()) return;
      EnsureReadCapacity(conn.get(), kReadChunk);
      const ssize_t r =
          ::recv(conn->fd.get(), conn->rbuf.data() + conn->wpos,
                 conn->rbuf.size() - conn->wpos, 0);
      if (r > 0) {
        conn->wpos += static_cast<size_t>(r);
        conn->last_activity_ms = MonotonicMillis();
        ServiceBuffered(conn.get());
        continue;
      }
      if (r == 0) {
        // Peer FIN. Between frames this is the normal end of a
        // connection; mid-frame it is a torn stream.
        if (conn->rpos != conn->wpos) {
          m.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        }
        BeginDrain(conn.get());
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // Hard transport error (e.g. ECONNRESET): same accounting as a
      // torn frame; pending responses are undeliverable.
      m.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(conn);
      return;
    }
  }

  /// Decodes complete frames from rbuf into pipeline slots, submitting
  /// admitted requests to the worker pool, until data runs out, the
  /// pipeline cap pauses reads, or a malformed frame starts the drain.
  void ParseFrames(Connection* conn) {
    NetMetrics& m = server_->metrics_;
    const ServerOptions& opt = server_->options_;
    // Admitted requests parsed this round, handed to the worker pool in
    // one batch at the end — one queue lock per readiness event instead
    // of one per frame. Submitting after the loop (not per frame) cannot
    // reorder: batch order preserves parse order, and response order is
    // fixed by the slots regardless.
    std::vector<Request> parsed;
    while (!conn->draining && !conn->read_paused && conn->fd.valid()) {
      const size_t avail = conn->wpos - conn->rpos;
      if (avail < kFrameHeaderSize) break;
      FrameHeader header;
      const Status st =
          ParseFrameHeader(conn->rbuf.data() + conn->rpos, &header);
      if (!st.ok() || header.is_response ||
          header.payload_size > opt.max_frame_bytes) {
        // Malformed frame mid-pipeline: responses already in flight are
        // still delivered in order; only then does the connection close.
        m.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        server_->SubmitRequests(&parsed);
        BeginDrain(conn);
        return;
      }
      const size_t frame_size = kFrameHeaderSize + header.payload_size;
      if (avail < frame_size) {
        // Partial frame: reserve the full frame contiguously up front so
        // a 16 MiB payload doesn't pay a memmove per 64 KiB chunk.
        EnsureReadCapacity(conn, frame_size - avail);
        break;
      }
      const uint8_t* payload =
          conn->rbuf.data() + conn->rpos + kFrameHeaderSize;
      if (!CheckPayloadCrc(header, payload, header.payload_size).ok()) {
        m.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        server_->SubmitRequests(&parsed);
        BeginDrain(conn);
        return;
      }
      m.bytes_in.fetch_add(frame_size, std::memory_order_relaxed);
      conn->slots.push_back(std::make_unique<ResponseSlot>(header.type));
      ResponseSlot* slot = conn->slots.back().get();
      m.pipeline_depth.Record(static_cast<int64_t>(conn->slots.size()));
      if (!server_->admission_.TryAdmit(header.payload_size)) {
        m.overload_rejections.fetch_add(1, std::memory_order_relaxed);
        CompleteSlot(slot,
                     Status::Unavailable("server overloaded: in-flight "
                                         "budget exhausted, retry with "
                                         "backoff"));
      } else {
        Request request;
        request.conn = conns_.at(conn->fd.get());
        request.slot = slot;
        request.type = header.type;
        request.payload.assign(payload, payload + header.payload_size);
        request.admitted_bytes = header.payload_size;
        conn->executing.fetch_add(1, std::memory_order_relaxed);
        parsed.push_back(std::move(request));
      }
      conn->rpos += frame_size;
      if (conn->slots.size() >= opt.max_pipeline_depth) {
        // Backpressure, not shedding: stop reading until the pipeline
        // drains below the cap; TCP flow control slows the sender.
        conn->read_paused = true;
        m.read_pauses.fetch_add(1, std::memory_order_relaxed);
        UpdateInterest(conn);
      }
    }
    server_->SubmitRequests(&parsed);
    CompactReadBuffer(conn);
  }

  /// Encodes a no-body response (shed/shutdown) into `slot` inline on the
  /// loop thread and marks it ready.
  void CompleteSlot(ResponseSlot* slot, const Status& st) {
    EncodeResponseStatus(st, &slot->payload);
    FillFrameHeader(slot);
    slot->ready.store(true, std::memory_order_release);
  }

  /// Writes the ready in-order prefix of the pipeline with gathered
  /// writev calls (header + payload iovecs per frame — the frame is
  /// never copied into a contiguous buffer).
  void FlushResponses(Connection* conn) {
    if (!conn->fd.valid()) return;
    NetMetrics& m = server_->metrics_;
    while (!conn->slots.empty()) {
      iovec iov[kMaxIov];
      size_t niov = 0;
      size_t nframes = 0;
      for (const auto& slot_ptr : conn->slots) {
        ResponseSlot* s = slot_ptr.get();
        if (!s->ready.load(std::memory_order_acquire)) break;
        if (niov + 2 > kMaxIov) break;
        const std::vector<uint8_t>& payload = s->payload.data();
        if (s->offset < kFrameHeaderSize) {
          iov[niov++] = {s->header + s->offset,
                         kFrameHeaderSize - s->offset};
          if (!payload.empty()) {
            iov[niov++] = {const_cast<uint8_t*>(payload.data()),
                           payload.size()};
          }
        } else {
          const size_t poff = s->offset - kFrameHeaderSize;
          iov[niov++] = {const_cast<uint8_t*>(payload.data()) + poff,
                         payload.size() - poff};
        }
        ++nframes;
      }
      if (nframes == 0) break;
      const ssize_t n = ::writev(conn->fd.get(), iov,
                                 static_cast<int>(niov));
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (!conn->want_write) {
            conn->want_write = true;
            UpdateInterest(conn);
          }
          if (conn->write_blocked_since_ms < 0) {
            conn->write_blocked_since_ms = MonotonicMillis();
          }
          return;
        }
        // Peer gone mid-response: the remaining pipeline is
        // undeliverable.
        CloseConnection(conns_.at(conn->fd.get()));
        return;
      }
      m.bytes_out.fetch_add(static_cast<uint64_t>(n),
                            std::memory_order_relaxed);
      m.writev_frames.Record(static_cast<int64_t>(nframes));
      conn->write_blocked_since_ms = -1;
      size_t left = static_cast<size_t>(n);
      while (left > 0) {
        ResponseSlot* s = conn->slots.front().get();
        const size_t take = std::min(left, s->total() - s->offset);
        s->offset += take;
        left -= take;
        if (s->offset == s->total()) conn->slots.pop_front();
      }
    }
    if (conn->slots.empty() || !conn->slots.front()->ready.load(
                                   std::memory_order_acquire)) {
      // Nothing more to write right now.
      if (conn->want_write) {
        conn->want_write = false;
        UpdateInterest(conn);
      }
      if (conn->slots.empty()) conn->write_blocked_since_ms = -1;
    }
    if (conn->slots.empty() && conn->draining &&
        conn->executing.load(std::memory_order_acquire) == 0) {
      CloseConnection(conns_.at(conn->fd.get()));
      return;
    }
    if (conn->read_paused && !conn->draining &&
        conn->slots.size() < server_->options_.max_pipeline_depth) {
      conn->read_paused = false;
      UpdateInterest(conn);
      // Frames may already be buffered; ServiceBuffered re-parses.
      if (conn->rpos != conn->wpos) conn->resume_parse = true;
    }
  }

  /// Stops reading this connection for good (malformed frame, peer EOF,
  /// shutdown drain); discards unparsed bytes; closes once the pending
  /// pipeline has flushed and every in-flight request completed.
  void BeginDrain(Connection* conn) {
    if (conn->draining || !conn->fd.valid()) return;
    conn->draining = true;
    conn->rpos = conn->wpos = 0;
    UpdateInterest(conn);
    FlushResponses(conn);  // closes now when nothing is pending
  }

  // By value on purpose: callers may pass the map element itself, which
  // the erase below would otherwise invalidate under us.
  void CloseConnection(std::shared_ptr<Connection> conn) {
    if (!conn->fd.valid()) return;
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, conn->fd.get(), nullptr);
    conns_.erase(conn->fd.get());
    conn->fd.Reset();
    server_->open_connections_.fetch_sub(1, std::memory_order_relaxed);
    server_->metrics_.active_connections.fetch_sub(
        1, std::memory_order_relaxed);
    // Workers still executing this connection's requests hold their own
    // shared_ptr; their completed slots are simply never written.
  }

  void UpdateInterest(Connection* conn) {
    epoll_event ev{};
    if (!conn->draining && !conn->read_paused) {
      ev.events |= EPOLLIN | EPOLLRDHUP;
    }
    if (conn->want_write) ev.events |= EPOLLOUT;
    ev.data.fd = conn->fd.get();
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev);
  }

  /// Guarantees `min_free` writable bytes after wpos, compacting the
  /// consumed prefix first and growing only when compaction is not
  /// enough.
  void EnsureReadCapacity(Connection* conn, size_t min_free) {
    if (conn->rpos == conn->wpos) conn->rpos = conn->wpos = 0;
    if (conn->rbuf.size() - conn->wpos >= min_free) return;
    if (conn->rpos > 0) {
      std::memmove(conn->rbuf.data(), conn->rbuf.data() + conn->rpos,
                   conn->wpos - conn->rpos);
      conn->wpos -= conn->rpos;
      conn->rpos = 0;
    }
    if (conn->rbuf.size() - conn->wpos < min_free) {
      conn->rbuf.resize(conn->wpos + min_free);
    }
  }

  void CompactReadBuffer(Connection* conn) {
    if (conn->rpos == conn->wpos) {
      conn->rpos = conn->wpos = 0;
      if (conn->rbuf.size() > kReadBufferShrinkThreshold) {
        conn->rbuf.resize(kReadChunk);
        conn->rbuf.shrink_to_fit();
      }
    }
  }

  void MaybeEnterStopping(int64_t now_ms) {
    if (stopping_ ||
        !server_->stopping_.load(std::memory_order_acquire)) {
      return;
    }
    stopping_ = true;
    drain_deadline_ms_ =
        now_ms + std::max(server_->options_.conn_send_timeout_ms, 100);
    std::vector<std::shared_ptr<Connection>> all;
    all.reserve(conns_.size());
    for (auto& [fd, c] : conns_) all.push_back(c);
    for (auto& c : all) BeginDrain(c.get());
    // After this point the loop decodes no new frames, so once the
    // worker queue empties it stays empty — the workers' exit predicate
    // counts drained loops.
    server_->loops_drained_.fetch_add(1, std::memory_order_release);
  }

  void SweepTimeouts(int64_t now_ms) {
    const ServerOptions& opt = server_->options_;
    std::vector<std::shared_ptr<Connection>> idle, stalled;
    for (auto& [fd, conn] : conns_) {
      if (opt.conn_recv_timeout_ms > 0 && !conn->draining &&
          conn->slots.empty() &&
          conn->executing.load(std::memory_order_acquire) == 0 &&
          now_ms - conn->last_activity_ms > opt.conn_recv_timeout_ms) {
        idle.push_back(conn);
      } else if (opt.conn_send_timeout_ms > 0 &&
                 conn->write_blocked_since_ms >= 0 &&
                 now_ms - conn->write_blocked_since_ms >
                     opt.conn_send_timeout_ms) {
        stalled.push_back(conn);
      }
    }
    for (auto& conn : idle) {
      // Same accounting as the blocking server's recv timeout.
      server_->metrics_.protocol_errors.fetch_add(
          1, std::memory_order_relaxed);
      CloseConnection(conn);
    }
    for (auto& conn : stalled) CloseConnection(conn);
  }

  /// Builds the 13-byte frame header once the payload is final.
  static void FillFrameHeader(ResponseSlot* slot);

  BacksortServer* server_;
  ScopedFd epoll_fd_;
  ScopedFd wake_fd_;
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  std::mutex mu_;
  std::vector<ScopedFd> incoming_;                        // guarded by mu_
  std::vector<std::shared_ptr<Connection>> completions_;  // guarded by mu_

  bool stopping_ = false;  // loop-thread local; derived from the server
  int64_t drain_deadline_ms_ = -1;
  std::thread thread_;

  friend class BacksortServer;
};

void BacksortServer::EventLoop::FillFrameHeader(ResponseSlot* slot) {
  ByteBuffer header;
  header.PutFixed32(kFrameMagic);
  header.PutU8(static_cast<uint8_t>(slot->type) | kResponseBit);
  header.PutFixed32(static_cast<uint32_t>(slot->payload.size()));
  header.PutFixed32(
      Crc32(slot->payload.data().data(), slot->payload.size()));
  std::memcpy(slot->header, header.data().data(), kFrameHeaderSize);
}

BacksortServer::BacksortServer(EngineOptions engine_options,
                               ServerOptions options)
    : engine_options_(std::move(engine_options)),
      options_(std::move(options)),
      admission_(options_.max_inflight_requests,
                 options_.max_inflight_bytes) {
  if (options_.event_loops == 0) options_.event_loops = 1;
  if (options_.workers == 0) options_.workers = 1;
  if (options_.max_pipeline_depth == 0) options_.max_pipeline_depth = 1;
}

BacksortServer::~BacksortServer() { Stop(); }

Status BacksortServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  engine_ = std::make_unique<StorageEngine>(engine_options_);
  Status st = engine_->Open();
  if (!st.ok()) {
    engine_.reset();
    return st;
  }
  st = listener_.Open(options_.host, options_.port,
                      /*backlog=*/128);
  if (!st.ok()) {
    engine_.reset();
    return st;
  }
  loops_.reserve(options_.event_loops);
  for (size_t i = 0; i < options_.event_loops; ++i) {
    auto loop = std::make_unique<EventLoop>(this);
    st = loop->Open();
    if (!st.ok()) {
      loops_.clear();
      listener_.Close();
      engine_.reset();
      return st;
    }
    loops_.push_back(std::move(loop));
  }
  started_ = true;
  for (auto& loop : loops_) loop->StartThread();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void BacksortServer::Stop() {
  if (!started_ || stopped_) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the accept loop without closing the listener fd — the accept
  // thread still reads it until joined below.
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // Event loops drain: stop decoding, let queued requests execute, flush
  // every pending response (bounded by conn_send_timeout_ms), close.
  for (auto& loop : loops_) loop->RequestStop();
  for (auto& loop : loops_) loop->Join();
  // With every loop drained no new requests can arrive; wake the workers
  // so they observe the exit predicate once the queue is empty. The empty
  // critical section orders the drained/stopping stores against a worker
  // mid-way through evaluating the wait predicate (classic lost-wakeup
  // guard).
  { std::lock_guard<std::mutex> lock(queue_mu_); }
  queue_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  stopped_ = true;
}

NetMetricsSnapshot BacksortServer::GetNetMetrics() const {
  NetMetricsSnapshot snap = metrics_.Snapshot();
  snap.inflight_requests = admission_.inflight_requests();
  snap.inflight_bytes = admission_.inflight_bytes();
  return snap;
}

std::string BacksortServer::RenderMetricsExposition() {
  MetricsRegistry registry;
  ExportEngineMetrics(engine_->GetMetricsSnapshot(), /*base_labels=*/{},
                      /*include_traces=*/false, &registry);
  ExportNetMetrics(GetNetMetrics(), /*base_labels=*/{}, &registry);
  if (extra_exporter_) extra_exporter_(&registry);
  return registry.RenderPrometheus();
}

void BacksortServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    ScopedFd conn;
    if (!listener_.Accept(&conn).ok()) {
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;  // transient accept error (e.g. peer reset in the backlog)
    }
    metrics_.connections_total.fetch_add(1, std::memory_order_relaxed);
    if (open_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      // Shed at the door: more sockets than the loops should keep fair.
      // Closing is the only safe answer — registering more would hide
      // the overload from the client.
      metrics_.overload_rejections.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!SetNonBlocking(conn.get(), true).ok()) continue;
    int one = 1;
    ::setsockopt(conn.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    metrics_.active_connections.fetch_add(1, std::memory_order_relaxed);
    loops_[next_loop_]->AddConnection(std::move(conn));
    next_loop_ = (next_loop_ + 1) % loops_.size();
  }
}

void BacksortServer::SubmitRequests(std::vector<Request>* requests) {
  if (requests->empty()) return;
  const size_t n = requests->size();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (Request& r : *requests) {
      request_queue_.push_back(std::move(r));
    }
  }
  requests->clear();
  // One wake is enough for one new request; a burst can use every worker.
  if (n == 1) {
    queue_cv_.notify_one();
  } else {
    queue_cv_.notify_all();
  }
}

void BacksortServer::WorkerLoop() {
  while (true) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !request_queue_.empty() ||
               (stopping_.load(std::memory_order_acquire) &&
                loops_drained_.load(std::memory_order_acquire) ==
                    loops_.size());
      });
      if (request_queue_.empty()) return;  // stopping and fully drained
      request = std::move(request_queue_.front());
      request_queue_.pop_front();
    }
    ExecuteRequest(request);
  }
}

void BacksortServer::ExecuteRequest(Request& request) {
  WallTimer timer;
  ByteBuffer body;
  const Status rpc = Dispatch(request.type, request.payload, &body);
  // Count before the completion is posted: a client that has received
  // its reply must be able to observe the incremented counter in a
  // snapshot.
  const size_t idx = MsgTypeIndex(request.type);
  metrics_.requests_total[idx].fetch_add(1, std::memory_order_relaxed);
  ResponseSlot* slot = request.slot;
  EncodeResponseStatus(rpc, &slot->payload);
  if (rpc.ok()) slot->payload.Append(body);
  EventLoop::FillFrameHeader(slot);
  admission_.Release(request.admitted_bytes);
  metrics_.request_ns[idx].Record(timer.ElapsedNanos());
  slot->ready.store(true, std::memory_order_release);
  request.conn->executing.fetch_sub(1, std::memory_order_acq_rel);
  request.conn->loop->PostCompletion(request.conn);
}

Status BacksortServer::Dispatch(MsgType type,
                                const std::vector<uint8_t>& payload,
                                ByteBuffer* body) {
  switch (type) {
    case MsgType::kPing:
      return Status::OK();
    case MsgType::kWriteBatch: {
      // Streaming decode: the points feed the engine as a non-owning
      // span over the payload bytes (or a bulk-relayout scratch), never
      // an owning intermediate vector.
      thread_local std::vector<TvPairDouble> scratch;
      WriteBatchView view;
      RETURN_NOT_OK(DecodeWriteBatchView(payload.data(), payload.size(),
                                         &scratch, &view));
      const SensorSpanDouble span{&view.sensor, view.points, view.count};
      return engine_->WriteMulti(&span, 1);
    }
    case MsgType::kQuery: {
      RangeRequest req;
      RETURN_NOT_OK(DecodeRangeRequest(payload.data(), payload.size(), &req));
      std::vector<TvPairDouble> points;
      RETURN_NOT_OK(engine_->Query(req.sensor, req.t_min, req.t_max, &points));
      EncodePointList(points, body);
      return Status::OK();
    }
    case MsgType::kGetLatest: {
      SensorRequest req;
      RETURN_NOT_OK(DecodeSensorRequest(payload.data(), payload.size(), &req));
      TvPairDouble latest;
      RETURN_NOT_OK(engine_->GetLatest(req.sensor, &latest));
      EncodePoint(latest, body);
      return Status::OK();
    }
    case MsgType::kAggregateFast: {
      RangeRequest req;
      RETURN_NOT_OK(DecodeRangeRequest(payload.data(), payload.size(), &req));
      AggregateResult result;
      RETURN_NOT_OK(engine_->AggregateFast(req.sensor, req.t_min, req.t_max,
                                           &result.stats,
                                           &result.used_fast_path));
      EncodeAggregateResult(result, body);
      return Status::OK();
    }
    case MsgType::kMetricsSnapshot: {
      body->PutLengthPrefixedString(RenderMetricsExposition());
      return Status::OK();
    }
    case MsgType::kReplicateBatch:
      return HandleReplicateBatch(payload, body);
    case MsgType::kReplicationAck:
      return HandleReplicationAck(payload, body);
  }
  // Unreachable: ParseFrameHeader rejects unknown types before dispatch.
  return Status::InvalidArgument("unhandled message type");
}

ShipFrontier& BacksortServer::LoadedFrontierLocked(
    const std::string& source_id) {
  auto it = repl_frontiers_.find(source_id);
  if (it == repl_frontiers_.end()) {
    ShipFrontier frontier;
    // A missing or damaged cursor file loads as the empty frontier; the
    // source then re-ships from its oldest segment and LWW absorbs it.
    (void)ReplicationCursorStore(engine_->options().data_dir, source_id)
        .Load(&frontier);
    it = repl_frontiers_.emplace(source_id, std::move(frontier)).first;
  }
  return it->second;
}

Status BacksortServer::HandleReplicateBatch(
    const std::vector<uint8_t>& payload, ByteBuffer* body) {
  ReplicateBatchRequest req;
  RETURN_NOT_OK(DecodeReplicateBatchRequest(payload.data(), payload.size(),
                                            &req));
  // The decoder already enforces both; re-checked here because the
  // frontier resize below must never run on unvalidated values.
  if (!ValidSourceId(req.source_id) || req.shard >= kMaxReplicationShards) {
    return Status::InvalidArgument("replicate batch request invalid");
  }
  // Apply in group order — consecutive same-sensor runs of the source's
  // ship stream, so per-sensor arrival order survives and a replayed
  // chunk is LWW-idempotent. WriteReplicated never re-enters this node's
  // own ship log (a two-node ring would otherwise cycle forever).
  std::vector<SensorSpanDouble> spans;
  spans.reserve(req.groups.size());
  for (const WriteBatchRequest& group : req.groups) {
    spans.push_back(
        SensorSpanDouble{&group.sensor, group.points.data(),
                         group.points.size()});
  }
  RETURN_NOT_OK(engine_->WriteReplicated(spans.data(), spans.size()));

  std::lock_guard<std::mutex> lock(repl_mu_);
  ShipFrontier& frontier = LoadedFrontierLocked(req.source_id);
  if (req.shard >= frontier.cursors.size()) {
    frontier.cursors.resize(static_cast<size_t>(req.shard) + 1);
  }
  ShipCursor& cursor = frontier.cursors[static_cast<size_t>(req.shard)];
  // Monotone advance only: a duplicate/late chunk (source retry after a
  // lost ack) must not move the durable cursor backwards.
  if (req.end.segment > cursor.segment ||
      (req.end.segment == cursor.segment && req.end.offset > cursor.offset)) {
    cursor = req.end;
    RETURN_NOT_OK(
        ReplicationCursorStore(engine_->options().data_dir, req.source_id)
            .Store(frontier));
  }
  EncodeShipCursor(cursor, body);
  return Status::OK();
}

Status BacksortServer::HandleReplicationAck(
    const std::vector<uint8_t>& payload, ByteBuffer* body) {
  ReplicationAckRequest req;
  RETURN_NOT_OK(
      DecodeReplicationAckRequest(payload.data(), payload.size(), &req));
  // Decoder-enforced; re-checked before the id reaches the cursor store
  // filename and the frontier map.
  if (!ValidSourceId(req.source_id)) {
    return Status::InvalidArgument("replication ack source id invalid");
  }
  std::lock_guard<std::mutex> lock(repl_mu_);
  EncodeShipFrontier(LoadedFrontierLocked(req.source_id), body);
  return Status::OK();
}

}  // namespace backsort
