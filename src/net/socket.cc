#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

namespace backsort {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

void ScopedFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TcpListener::Open(const std::string& host, uint16_t port,
                         int backlog) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("listen host must be an IPv4 address: " +
                                   host);
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) return Errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  fd_ = std::move(fd);
  return Status::OK();
}

Status TcpListener::Accept(ScopedFd* conn) {
  while (true) {
    const int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) {
      *conn = ScopedFd(fd);
      return Status::OK();
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

void TcpListener::Shutdown() {
  // shutdown() wakes a blocked accept on Linux with EINVAL; the fd itself
  // stays open (and fd_ unmodified) until Close(), so a racing accept
  // thread never reads a recycled descriptor number.
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

void TcpListener::Close() {
  if (fd_.valid()) {
    ::shutdown(fd_.get(), SHUT_RDWR);
    fd_.Reset();
  }
}

Status TcpConnect(const std::string& host, uint16_t port, int timeout_ms,
                  ScopedFd* out) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string port_text = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_text.c_str(), &hints, &result) != 0 ||
      result == nullptr) {
    return Status::IOError("cannot resolve " + host);
  }

  ScopedFd fd(::socket(result->ai_family, SOCK_STREAM, 0));
  if (!fd.valid()) {
    ::freeaddrinfo(result);
    return Errno("socket");
  }
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd.get(), result->ai_addr,
                           static_cast<socklen_t>(result->ai_addrlen));
  ::freeaddrinfo(result);
  if (rc != 0 && errno != EINPROGRESS) {
    return Errno("connect " + host + ":" + port_text);
  }
  if (rc != 0) {
    pollfd pfd{fd.get(), POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms <= 0 ? -1 : timeout_ms);
    if (ready == 0) {
      return Status::IOError("connect timeout to " + host + ":" + port_text);
    }
    if (ready < 0) return Errno("poll");
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
        err != 0) {
      errno = err != 0 ? err : errno;
      return Errno("connect " + host + ":" + port_text);
    }
  }
  ::fcntl(fd.get(), F_SETFL, flags);  // back to blocking
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out = std::move(fd);
  return Status::OK();
}

Status SetSocketTimeouts(int fd, int recv_timeout_ms, int send_timeout_ms) {
  const auto apply = [fd](int opt, int ms) {
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    return ::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv)) == 0;
  };
  if (!apply(SO_RCVTIMEO, recv_timeout_ms) ||
      !apply(SO_SNDTIMEO, send_timeout_ms)) {
    return Errno("setsockopt timeout");
  }
  return Status::OK();
}

Status SendAll(int fd, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IOError("send timeout");
      }
      return Errno("send");
    }
    p += sent;
    n -= static_cast<size_t>(sent);
  }
  return Status::OK();
}

Status RecvAll(int fd, void* data, size_t n, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  uint8_t* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0 && clean_eof != nullptr) *clean_eof = true;
      return Status::IOError(got == 0 ? "connection closed"
                                      : "connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IOError("recv timeout");
    }
    return Errno("recv");
  }
  return Status::OK();
}

void ShutdownRead(int fd) { ::shutdown(fd, SHUT_RD); }

Status SetNonBlocking(int fd, bool enabled) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int want = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) != 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

int64_t MonotonicMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

/// Polls `fd` for `events` until the deadline. OK = ready; IOError with
/// `what` on expiry or poll failure.
Status PollUntil(int fd, short events, int64_t deadline_ms,
                 const char* what) {
  while (true) {
    int wait_ms = -1;
    if (deadline_ms > 0) {
      const int64_t left = deadline_ms - MonotonicMillis();
      if (left <= 0) return Status::IOError(what);
      wait_ms = static_cast<int>(std::min<int64_t>(left, 1'000'000));
    }
    pollfd pfd{fd, events, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready > 0) return Status::OK();
    if (ready == 0) return Status::IOError(what);
    if (errno != EINTR) return Errno("poll");
  }
}

}  // namespace

Status SendAllDeadline(int fd, const void* data, size_t n,
                       int64_t deadline_ms) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
    if (sent > 0) {
      p += sent;
      n -= static_cast<size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      RETURN_NOT_OK(PollUntil(fd, POLLOUT, deadline_ms,
                              "send deadline exceeded"));
      continue;
    }
    return Errno("send");
  }
  return Status::OK();
}

Status RecvAllDeadline(int fd, void* data, size_t n, int64_t deadline_ms,
                       bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  uint8_t* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0 && clean_eof != nullptr) *clean_eof = true;
      return Status::IOError(got == 0 ? "connection closed"
                                      : "connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      RETURN_NOT_OK(PollUntil(fd, POLLIN, deadline_ms,
                              "recv deadline exceeded"));
      continue;
    }
    return Errno("recv");
  }
  return Status::OK();
}

Status RecvSomeDeadline(int fd, void* data, size_t n, size_t* got,
                        int64_t deadline_ms) {
  *got = 0;
  while (true) {
    const ssize_t r = ::recv(fd, data, n, 0);
    if (r > 0) {
      *got = static_cast<size_t>(r);
      return Status::OK();
    }
    if (r == 0) return Status::IOError("connection closed");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      RETURN_NOT_OK(PollUntil(fd, POLLIN, deadline_ms,
                              "recv deadline exceeded"));
      continue;
    }
    return Errno("recv");
  }
}

}  // namespace backsort
