#include "net/net_metrics.h"

namespace backsort {

void ExportNetMetrics(const NetMetricsSnapshot& snapshot,
                      const MetricsRegistry::Labels& base_labels,
                      MetricsRegistry* registry) {
  constexpr double kNsToSec = 1e-9;

  registry->Counter("backsort_net_connections_total",
                    "TCP connections accepted since the server started.",
                    base_labels,
                    static_cast<double>(snapshot.connections_total));
  registry->Gauge("backsort_net_active_connections",
                  "TCP connections currently open.", base_labels,
                  static_cast<double>(snapshot.active_connections));
  registry->Counter("backsort_net_bytes_in_total",
                    "Request frame bytes received (headers + payloads).",
                    base_labels, static_cast<double>(snapshot.bytes_in));
  registry->Counter("backsort_net_bytes_out_total",
                    "Response frame bytes sent (headers + payloads).",
                    base_labels, static_cast<double>(snapshot.bytes_out));
  registry->Counter(
      "backsort_net_overload_rejections_total",
      "Requests shed with an Overloaded response by admission control.",
      base_labels, static_cast<double>(snapshot.overload_rejections));
  registry->Counter(
      "backsort_net_protocol_errors_total",
      "Malformed frames (bad magic, CRC, oversized or truncated) that "
      "closed their connection.",
      base_labels, static_cast<double>(snapshot.protocol_errors));
  registry->Gauge("backsort_net_inflight_requests",
                  "Requests holding an admission slot right now.",
                  base_labels,
                  static_cast<double>(snapshot.inflight_requests));
  registry->Gauge("backsort_net_inflight_bytes",
                  "Payload bytes holding admission budget right now.",
                  base_labels, static_cast<double>(snapshot.inflight_bytes));
  registry->Counter("backsort_net_event_loop_wakeups_total",
                    "epoll_wait returns across all event-loop threads.",
                    base_labels,
                    static_cast<double>(snapshot.event_loop_wakeups));
  registry->Counter(
      "backsort_net_read_pauses_total",
      "Connections whose reads were paused because their pipeline reached "
      "max_pipeline_depth (backpressure events).",
      base_labels, static_cast<double>(snapshot.read_pauses));
  registry->Summary(
      "backsort_net_event_loop_events",
      "Readiness events delivered per epoll_wait return (event-loop "
      "depth); quantile=\"1\" is the observed max.",
      base_labels, snapshot.event_loop_events, 1.0);
  registry->Summary(
      "backsort_net_pipeline_depth",
      "In-flight pipelined requests on a connection, sampled as each "
      "request frame is decoded (1 = plain request/response traffic).",
      base_labels, snapshot.pipeline_depth, 1.0);
  registry->Summary(
      "backsort_net_writev_frames",
      "Response frames gathered into a single writev call (scatter/gather "
      "batch size).",
      base_labels, snapshot.writev_frames, 1.0);

  for (size_t i = 0; i < kNumMsgTypes; ++i) {
    const MsgType type = static_cast<MsgType>(i + 1);
    MetricsRegistry::Labels labels = base_labels;
    labels.emplace_back("type", MsgTypeName(type));
    registry->Counter("backsort_net_requests_total",
                      "Requests served (dispatched and answered), by type.",
                      labels, static_cast<double>(snapshot.requests_total[i]));
    registry->Summary(
        "backsort_net_request_duration_seconds",
        "Server-side request latency in seconds, decode to response "
        "written, by type; quantile=\"1\" is the observed max.",
        labels, snapshot.request_duration[i], kNsToSec);
  }
}

}  // namespace backsort
