#ifndef BACKSORT_NET_SERVER_H_
#define BACKSORT_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "engine/storage_engine.h"
#include "engine/wal_tailer.h"
#include "net/admission.h"
#include "net/net_metrics.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace backsort {

/// Tuning of the TCP front door. Every field has a usable default;
/// operator-facing knobs are documented in docs/OPERATIONS.md.
struct ServerOptions {
  /// Listen address (numeric IPv4) and port; port 0 binds an ephemeral
  /// port, readable via port() after Start().
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  /// epoll readiness threads. Each connection is owned by exactly one
  /// loop, which does its non-blocking reads, frame assembly and writev
  /// response flushing; loops never block on the engine.
  size_t event_loops = 2;

  /// Request-execution threads. Decoded requests are dispatched here so a
  /// slow engine call (a large query, a flush stall) never stalls the
  /// readiness loops.
  size_t workers = 4;

  /// Accept-time cap on open connections. Beyond this the accept loop
  /// sheds at the door (closes immediately) instead of registering more
  /// sockets than the loops can keep fair.
  size_t max_connections = 1024;

  /// Admission control: in-flight request and payload-byte budgets. A
  /// request that would exceed either bound is answered with Overloaded
  /// and not applied; a payload larger than max_inflight_bytes can never
  /// be admitted.
  size_t max_inflight_requests = 64;
  size_t max_inflight_bytes = 64u << 20;

  /// Largest payload a frame header may declare; bigger is a protocol
  /// error (connection closed before any allocation).
  size_t max_frame_bytes = 16u << 20;

  /// Per-connection pipelining cap: decoded-but-unanswered requests a
  /// single connection may hold. At the cap the loop stops reading that
  /// connection (backpressure via TCP flow control) instead of shedding —
  /// admission control still bounds the global in-flight budget.
  size_t max_pipeline_depth = 32;

  /// Idle timeout: a connection with no complete frame activity for this
  /// long is closed (0 = never). Coarse-grained (checked on the event
  /// loop's periodic sweep).
  int conn_recv_timeout_ms = 0;

  /// Stalled-send bound: a connection whose pending responses make no
  /// write progress for this long is closed, so one dead client cannot
  /// pin response buffers forever. Also bounds the graceful-shutdown
  /// drain.
  int conn_send_timeout_ms = 10'000;
};

/// Event-driven TCP server exposing one StorageEngine over the CRC-framed
/// BSN1 wire protocol (net/protocol.h, spec in docs/WIRE_PROTOCOL.md). A
/// small set of epoll readiness loops own the connections: non-blocking
/// reads into per-connection frame-assembly buffers, request pipelining
/// (multiple in-flight frames per connection, responses written in
/// request order), and writev scatter/gather response flushing (header +
/// payload iovecs, no intermediate frame copy). Decoded requests execute
/// on a separate worker pool against the engine; admission control sheds
/// with Overloaded instead of queueing unboundedly, the per-connection
/// pipeline cap pushes back through TCP flow control, malformed frames
/// close only their own connection (after draining the responses already
/// in flight), and Stop() drains accepted requests before the engine
/// destructor runs. Observable via `backsort_net_*` metrics merged into
/// the engine's Prometheus exposition (docs/METRICS.md).
class BacksortServer {
 public:
  /// Stores the options; the engine is built and opened by Start().
  BacksortServer(EngineOptions engine_options, ServerOptions options);

  /// Stops the service (graceful) and then destroys the engine, which
  /// drains its flush pool — so every applied write reaches the WAL/files.
  ~BacksortServer();

  BacksortServer(const BacksortServer&) = delete;
  BacksortServer& operator=(const BacksortServer&) = delete;

  /// Opens the engine, binds the listener and spawns the event loops,
  /// worker pool and accept thread. Fails without side threads on
  /// engine/bind errors.
  Status Start();

  /// Graceful shutdown, idempotent: stop accepting, stop reading new
  /// frames, execute every request already decoded, flush every pending
  /// response (bounded by conn_send_timeout_ms), join all threads. The
  /// engine stays alive for inspection until destruction.
  void Stop();

  /// Resolved listen port (after Start with port 0).
  uint16_t port() const { return listener_.port(); }

  /// The served engine; valid after a successful Start(). Tests use it to
  /// cross-check results; it must not be destroyed before the server.
  StorageEngine* engine() { return engine_.get(); }

  /// Network counters + admission gauges (thread-safe).
  NetMetricsSnapshot GetNetMetrics() const;

  /// Engine + network metrics rendered as one Prometheus exposition — the
  /// MetricsSnapshot RPC payload, also used by `bstool serve`.
  std::string RenderMetricsExposition();

  /// Registers an extra exporter merged into RenderMetricsExposition —
  /// how cluster-mode replication metrics ride along without net knowing
  /// about the cluster layer. Call before Start(); the exporter must be
  /// thread-safe (workers render concurrently).
  void SetExtraMetricsExporter(std::function<void(MetricsRegistry*)> exporter) {
    extra_exporter_ = std::move(exporter);
  }

 private:
  class EventLoop;
  struct Connection;
  struct ResponseSlot;

  /// One decoded, admitted request waiting for a worker.
  struct Request {
    std::shared_ptr<Connection> conn;
    ResponseSlot* slot = nullptr;
    MsgType type = MsgType::kPing;
    std::vector<uint8_t> payload;
    size_t admitted_bytes = 0;
  };

  void AcceptLoop();
  void WorkerLoop();

  /// Enqueues a batch of decoded requests for the worker pool (called by
  /// loops). One lock acquisition and one wake per parse round, however
  /// many frames a readiness event yielded.
  void SubmitRequests(std::vector<Request>* requests);

  /// Executes one request end to end on a worker: dispatch against the
  /// engine, encode the response into its slot, release admission, mark
  /// ready and wake the owning loop.
  void ExecuteRequest(Request& request);

  /// Runs the engine call for one request, appending the OK response body.
  Status Dispatch(MsgType type, const std::vector<uint8_t>& payload,
                  ByteBuffer* body);

  /// Applies one shipped replication chunk (kReplicateBatch): decode →
  /// WriteReplicated (never re-shipped — loop prevention on a ring) →
  /// persist the per-(source, shard) cursor → respond with the stored
  /// cursor. Serialized under repl_mu_ so cursor reads/writes are atomic
  /// per source.
  Status HandleReplicateBatch(const std::vector<uint8_t>& payload,
                              ByteBuffer* body);

  /// Cursor handshake (kReplicationAck): responds with the frontier this
  /// node has persisted for the requesting source (empty when none).
  Status HandleReplicationAck(const std::vector<uint8_t>& payload,
                              ByteBuffer* body);

  /// Loads (lazily, once) the persisted frontier of `source_id` into
  /// repl_frontiers_ and returns it. Caller holds repl_mu_.
  ShipFrontier& LoadedFrontierLocked(const std::string& source_id);

  EngineOptions engine_options_;
  ServerOptions options_;
  std::unique_ptr<StorageEngine> engine_;
  TcpListener listener_;
  AdmissionController admission_;
  mutable NetMetrics metrics_;

  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;

  /// Open connections across all loops, for the accept-time cap.
  std::atomic<size_t> open_connections_{0};

  std::vector<std::unique_ptr<EventLoop>> loops_;
  size_t next_loop_ = 0;

  /// Loops that have entered shutdown drain (no further request
  /// submission); workers exit only once every loop has drained and the
  /// queue is empty.
  std::atomic<size_t> loops_drained_{0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> request_queue_;

  /// Merged into RenderMetricsExposition when set (cluster metrics hook).
  std::function<void(MetricsRegistry*)> extra_exporter_;

  /// Follower-side replication state: the acknowledged frontier per
  /// source node, mirrored to replcursor-<source>.bin in the engine's
  /// data dir. Guarded by repl_mu_ (replication chunks arrive one at a
  /// time per source, so this lock is never hot).
  std::mutex repl_mu_;
  std::map<std::string, ShipFrontier> repl_frontiers_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace backsort

#endif  // BACKSORT_NET_SERVER_H_
