#ifndef BACKSORT_NET_SERVER_H_
#define BACKSORT_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/storage_engine.h"
#include "net/admission.h"
#include "net/net_metrics.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace backsort {

/// Tuning of the TCP front door. Every field has a usable default;
/// operator-facing knobs are documented in docs/OPERATIONS.md.
struct ServerOptions {
  /// Listen address (numeric IPv4) and port; port 0 binds an ephemeral
  /// port, readable via port() after Start().
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  /// Connection-handling threads. Each worker owns one connection at a
  /// time (blocking sockets), so this is also the concurrent-connection
  /// service limit; further accepted connections wait in the pending
  /// queue.
  size_t workers = 4;

  /// Accepted connections waiting for a free worker. Beyond this the
  /// accept loop sheds at the door (closes immediately) instead of
  /// queueing unboundedly.
  size_t max_pending_connections = 64;

  /// Admission control: in-flight request and payload-byte budgets. A
  /// request that would exceed either bound is answered with Overloaded
  /// and not applied; a payload larger than max_inflight_bytes can never
  /// be admitted.
  size_t max_inflight_requests = 64;
  size_t max_inflight_bytes = 64u << 20;

  /// Largest payload a frame header may declare; bigger is a protocol
  /// error (connection closed before any allocation).
  size_t max_frame_bytes = 16u << 20;

  /// Per-connection socket timeouts. Receive defaults to 0 (block forever;
  /// graceful shutdown wakes blocked reads via shutdown(SHUT_RD)), send is
  /// bounded so one dead client cannot wedge a worker mid-response.
  int conn_recv_timeout_ms = 0;
  int conn_send_timeout_ms = 10'000;
};

/// Multi-threaded blocking-socket TCP server exposing one StorageEngine
/// over the CRC-framed wire protocol (net/protocol.h): an accept loop
/// feeds a bounded worker pool; each worker runs one connection's
/// read/decode/dispatch/encode cycle. Admission control sheds load with
/// Overloaded instead of queueing unboundedly, malformed frames close
/// only their own connection, and Stop() drains in-flight requests before
/// the engine destructor runs. Observable via `backsort_net_*` metrics
/// merged into the engine's Prometheus exposition (docs/METRICS.md).
class BacksortServer {
 public:
  /// Stores the options; the engine is built and opened by Start().
  BacksortServer(EngineOptions engine_options, ServerOptions options);

  /// Stops the service (graceful) and then destroys the engine, which
  /// drains its flush pool — so every applied write reaches the WAL/files.
  ~BacksortServer();

  BacksortServer(const BacksortServer&) = delete;
  BacksortServer& operator=(const BacksortServer&) = delete;

  /// Opens the engine, binds the listener and spawns the accept loop and
  /// worker pool. Fails without side threads on engine/bind errors.
  Status Start();

  /// Graceful shutdown, idempotent: stop accepting, wake workers blocked
  /// in recv (their in-flight request still completes and its response is
  /// written), join all threads, close pending connections. The engine
  /// stays alive for inspection until destruction.
  void Stop();

  /// Resolved listen port (after Start with port 0).
  uint16_t port() const { return listener_.port(); }

  /// The served engine; valid after a successful Start(). Tests use it to
  /// cross-check results; it must not be destroyed before the server.
  StorageEngine* engine() { return engine_.get(); }

  /// Network counters + admission gauges (thread-safe).
  NetMetricsSnapshot GetNetMetrics() const;

  /// Engine + network metrics rendered as one Prometheus exposition — the
  /// MetricsSnapshot RPC payload, also used by `bstool serve`.
  std::string RenderMetricsExposition();

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(ScopedFd conn);

  /// Decode + admission + dispatch + respond for one request frame whose
  /// payload passed the CRC. Returns false when the connection must close.
  bool HandleRequest(int fd, const FrameHeader& header,
                     const std::vector<uint8_t>& payload);

  /// Runs the engine call for one request, appending the OK response body.
  Status Dispatch(MsgType type, const std::vector<uint8_t>& payload,
                  ByteBuffer* body);

  Status WriteResponse(int fd, MsgType type, const Status& rpc_status,
                       const ByteBuffer& body);

  void RegisterConn(int fd);
  void UnregisterConn(int fd);

  EngineOptions engine_options_;
  ServerOptions options_;
  std::unique_ptr<StorageEngine> engine_;
  TcpListener listener_;
  AdmissionController admission_;
  mutable NetMetrics metrics_;

  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<ScopedFd> pending_;

  /// Connections currently inside ServeConnection, for shutdown wakeup.
  /// Guarded by conns_mu_; a worker unregisters (under the mutex) before
  /// closing, so Stop never touches a recycled fd.
  std::mutex conns_mu_;
  std::set<int> serving_fds_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace backsort

#endif  // BACKSORT_NET_SERVER_H_
