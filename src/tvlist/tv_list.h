#ifndef BACKSORT_TVLIST_TV_LIST_H_
#define BACKSORT_TVLIST_TV_LIST_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/counters.h"
#include "common/types.h"

namespace backsort {

/// TVList — the in-memory buffer of one sensor's chunk in a memtable,
/// replicated from Apache IoTDB (Section V-B of the paper): timestamps and
/// values are stored in parallel lists of fixed-size arrays (List<Array>,
/// default array size 32), a deque-like compromise between per-point
/// allocation and one huge buffer. Points are appended in arrival order;
/// sorting by timestamp happens lazily at flush or query time through a
/// pluggable sorting algorithm (see TVListSortable).
///
/// Arrays come from the optional Arena when one is supplied (the memtable
/// path: every list of one memtable shares the memtable's arena and the
/// whole table frees wholesale at retire) or from the heap otherwise (the
/// algorithm benches and tests). An arena-backed list must not outlive its
/// arena; it never frees individual arrays.
template <typename V>
class TVList {
 public:
  static constexpr size_t kDefaultArraySize = 32;

  explicit TVList(size_t array_size = kDefaultArraySize,
                  Arena* arena = nullptr)
      : array_size_(array_size == 0 ? kDefaultArraySize : array_size),
        arena_(arena) {}

  // Movable, not copyable: a TVList owns its array chain, and accidental
  // copies of multi-megabyte buffers should be spelled out via Clone().
  TVList(TVList&& other) noexcept { MoveFrom(other); }
  TVList& operator=(TVList&& other) noexcept {
    if (this != &other) {
      ReleaseArrays();
      MoveFrom(other);
    }
    return *this;
  }
  TVList(const TVList&) = delete;
  TVList& operator=(const TVList&) = delete;

  ~TVList() { ReleaseArrays(); }

  /// Appends one point in arrival order.
  void Put(Timestamp t, const V& v) {
    const size_t arr = size_ / array_size_;
    const size_t off = size_ % array_size_;
    if (arr == time_arrays_.size()) PushArrays();
    time_arrays_[arr][off] = t;
    value_arrays_[arr][off] = v;
    if (size_ > 0 && t < max_time_) {
      sorted_ = false;
    }
    if (size_ == 0 || t > max_time_) max_time_ = t;
    if (size_ == 0 || t < min_time_) min_time_ = t;
    ++size_;
  }

  /// Appends `n` points in arrival order — semantically `n` calls to Put,
  /// but copied array-chunk by array-chunk so the per-point index math and
  /// bookkeeping branches are hoisted out of the loop. The resulting list
  /// state (points, size, sorted flag, min/max times, array chain shape) is
  /// bit-identical to the per-point path; tvlist_test pins that down.
  void AppendN(const TvPair<V>* points, size_t n) {
    if (n == 0) return;
    size_t size = size_;
    bool sorted = sorted_;
    Timestamp min_t = min_time_;
    Timestamp max_t = max_time_;
    size_t i = 0;
    while (i < n) {
      const size_t arr = size / array_size_;
      const size_t off = size % array_size_;
      if (arr == time_arrays_.size()) PushArrays();
      Timestamp* tdst = time_arrays_[arr] + off;
      V* vdst = value_arrays_[arr] + off;
      const size_t take = std::min(array_size_ - off, n - i);
      for (size_t k = 0; k < take; ++k) {
        const Timestamp t = points[i + k].t;
        tdst[k] = t;
        vdst[k] = points[i + k].v;
        if (size > 0 && t < max_t) sorted = false;
        if (size == 0 || t > max_t) max_t = t;
        if (size == 0 || t < min_t) min_t = t;
        ++size;
      }
      i += take;
    }
    size_ = size;
    sorted_ = sorted;
    min_time_ = min_t;
    max_time_ = max_t;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Timestamp TimeAt(size_t i) const {
    return time_arrays_[i / array_size_][i % array_size_];
  }
  const V& ValueAt(size_t i) const {
    return value_arrays_[i / array_size_][i % array_size_];
  }

  void SetPoint(size_t i, Timestamp t, const V& v) {
    time_arrays_[i / array_size_][i % array_size_] = t;
    value_arrays_[i / array_size_][i % array_size_] = v;
  }

  /// True while every append so far has been in non-decreasing time order;
  /// a sorted list skips the sort step entirely at flush/query.
  bool sorted() const { return sorted_; }
  /// Called by sorting adapters once the list has been put in time order.
  void MarkSorted() { sorted_ = true; }

  /// Smallest / largest timestamp ingested so far (valid when non-empty).
  Timestamp min_time() const { return min_time_; }
  Timestamp max_time() const { return max_time_; }

  size_t array_size() const { return array_size_; }

  /// Approximate heap footprint, for memtable flush accounting: the array
  /// payload only (chain-pointer vectors are counted by ChainBytes, arena
  /// block overhead by the arena itself).
  size_t MemoryBytes() const {
    return time_arrays_.size() * array_size_ * (sizeof(Timestamp) + sizeof(V));
  }

  /// Heap bytes of the chain-pointer vectors themselves — the only part of
  /// an arena-backed list that still lives on the general heap. The
  /// memtable's exact accounting sums this per chunk on top of the arena.
  size_t ChainBytes() const {
    return time_arrays_.capacity() * sizeof(Timestamp*) +
           value_arrays_.capacity() * sizeof(V*);
  }

  /// Deep copy (explicit, see copy-constructor note above). The copy is
  /// heap-backed regardless of the source's arena.
  TVList Clone() const {
    TVList out(array_size_);
    for (size_t i = 0; i < size_; ++i) {
      out.Put(TimeAt(i), ValueAt(i));
    }
    out.sorted_ = sorted_;
    return out;
  }

  void Clear() {
    ReleaseArrays();
    size_ = 0;
    sorted_ = true;
    min_time_ = 0;
    max_time_ = 0;
  }

 private:
  void PushArrays() {
    if (arena_ != nullptr) {
      time_arrays_.push_back(arena_->AllocateArray<Timestamp>(array_size_));
      value_arrays_.push_back(arena_->AllocateArray<V>(array_size_));
    } else {
      time_arrays_.push_back(new Timestamp[array_size_]);
      value_arrays_.push_back(new V[array_size_]);
    }
  }

  /// Frees heap arrays (arena arrays are the arena's to free) and drops
  /// the chains.
  void ReleaseArrays() {
    if (arena_ == nullptr) {
      for (Timestamp* a : time_arrays_) delete[] a;
      for (V* a : value_arrays_) delete[] a;
    }
    time_arrays_.clear();
    value_arrays_.clear();
  }

  /// Move helper: steals other's chains and neuters it so its destructor
  /// frees nothing.
  void MoveFrom(TVList& other) {
    array_size_ = other.array_size_;
    arena_ = other.arena_;
    time_arrays_ = std::move(other.time_arrays_);
    value_arrays_ = std::move(other.value_arrays_);
    size_ = other.size_;
    sorted_ = other.sorted_;
    min_time_ = other.min_time_;
    max_time_ = other.max_time_;
    other.time_arrays_.clear();
    other.value_arrays_.clear();
    other.size_ = 0;
    other.sorted_ = true;
  }

  size_t array_size_ = kDefaultArraySize;
  Arena* arena_ = nullptr;
  std::vector<Timestamp*> time_arrays_;
  std::vector<V*> value_arrays_;
  size_t size_ = 0;
  bool sorted_ = true;
  Timestamp min_time_ = 0;
  Timestamp max_time_ = 0;
};

using IntTVList = TVList<int32_t>;      // the paper's IntTVList: <long,int>
using LongTVList = TVList<int64_t>;
using FloatTVList = TVList<float>;
using DoubleTVList = TVList<double>;
using BooleanTVList = TVList<uint8_t>;

/// Sortable-sequence adapter over a TVList, giving the sort algorithms the
/// same interface they have over flat vectors. Moving a point here touches
/// both the T chain and the V chain — the "cost of moves (TV pairs) is
/// higher in IoTDB than in general arrays" effect the paper highlights when
/// explaining Patience Sort's instability.
template <typename V>
class TVListSortable {
 public:
  using Element = TvPair<V>;

  explicit TVListSortable(TVList<V>& list) : list_(&list) {}

  size_t size() const { return list_->size(); }
  Timestamp TimeAt(size_t i) const { return list_->TimeAt(i); }

  Element Get(size_t i) const {
    return Element{list_->TimeAt(i), list_->ValueAt(i)};
  }

  void Set(size_t i, const Element& e) {
    list_->SetPoint(i, e.t, e.v);
    ++counters_.moves;
  }

  void Swap(size_t i, size_t j) {
    const Element a = Get(i);
    const Element b = Get(j);
    list_->SetPoint(i, b.t, b.v);
    list_->SetPoint(j, a.t, a.v);
    ++counters_.swaps;
    counters_.moves += 3;
  }

  static Timestamp ElementTime(const Element& e) { return e.t; }

  OpCounters& counters() { return counters_; }
  const OpCounters& counters() const { return counters_; }

  void NoteScratch(size_t n) {
    if (n > counters_.peak_scratch) counters_.peak_scratch = n;
  }

 private:
  TVList<V>* list_;
  OpCounters counters_;
};

}  // namespace backsort

#endif  // BACKSORT_TVLIST_TV_LIST_H_
