#include "encoding/encoding.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "encoding/bitio.h"

namespace backsort {

std::string EncodingName(Encoding e) {
  switch (e) {
    case Encoding::kPlain:
      return "PLAIN";
    case Encoding::kTs2Diff:
      return "TS_2DIFF";
    case Encoding::kRle:
      return "RLE";
    case Encoding::kGorilla:
      return "GORILLA";
    case Encoding::kSimple8b:
      return "SIMPLE8B";
  }
  return "unknown";
}

// --- PLAIN ------------------------------------------------------------------

void EncodePlainI64(const std::vector<int64_t>& in, ByteBuffer* out) {
  for (int64_t v : in) out->PutFixed64(static_cast<uint64_t>(v));
}

Status DecodePlainI64(ByteReader* in, size_t count,
                      std::vector<int64_t>* out) {
  out->clear();
  out->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t u = 0;
    RETURN_NOT_OK(in->GetFixed64(&u));
    out->push_back(static_cast<int64_t>(u));
  }
  return Status::OK();
}

// --- TS_2DIFF ----------------------------------------------------------------

namespace {
constexpr size_t kTs2DiffBlockSize = 128;
}  // namespace

void EncodeTs2DiffI64(const std::vector<int64_t>& in, ByteBuffer* out) {
  if (in.empty()) return;
  out->PutVarintSigned64(in[0]);
  const size_t n = in.size();
  size_t next = 1;
  std::vector<uint64_t> adjusted;
  adjusted.reserve(kTs2DiffBlockSize);
  while (next < n) {
    const size_t block_n = std::min(kTs2DiffBlockSize, n - next);
    // Deltas for this block.
    int64_t min_delta = in[next] - in[next - 1];
    for (size_t i = 1; i < block_n; ++i) {
      min_delta = std::min(min_delta, in[next + i] - in[next + i - 1]);
    }
    adjusted.clear();
    uint64_t max_adj = 0;
    for (size_t i = 0; i < block_n; ++i) {
      const int64_t prev = in[next + i - 1];
      const uint64_t adj =
          static_cast<uint64_t>((in[next + i] - prev) - min_delta);
      adjusted.push_back(adj);
      max_adj = std::max(max_adj, adj);
    }
    const int width = BitWidthOf(max_adj);
    out->PutVarintSigned64(min_delta);
    out->PutU8(static_cast<uint8_t>(width));
    BitWriter bw(out);
    for (uint64_t adj : adjusted) {
      bw.WriteBits(adj, width);
    }
    bw.Flush();
    next += block_n;
  }
}

Status DecodeTs2DiffI64(ByteReader* in, size_t count,
                        std::vector<int64_t>* out) {
  out->clear();
  if (count == 0) return Status::OK();
  out->resize(count);
  int64_t first = 0;
  RETURN_NOT_OK(in->GetVarintSigned64(&first));
  int64_t* dst = out->data();
  *dst++ = first;
  int64_t prev = first;
  size_t decoded = 1;
  // Block-at-a-time unpack into pre-sized storage: the running value stays
  // in a register and the inner loop carries no push_back capacity checks,
  // so a whole page materializes with branch-light prefix summing.
  while (decoded < count) {
    const size_t block_n = std::min(kTs2DiffBlockSize, count - decoded);
    int64_t min_delta = 0;
    RETURN_NOT_OK(in->GetVarintSigned64(&min_delta));
    uint8_t width = 0;
    RETURN_NOT_OK(in->GetU8(&width));
    if (width > 64) return Status::Corruption("ts2diff bit width > 64");
    if (width == 0) {
      // Constant-stride block (regular sampling, the common case): no bit
      // reads at all, just an arithmetic ramp.
      for (size_t i = 0; i < block_n; ++i) {
        prev += min_delta;
        *dst++ = prev;
      }
      decoded += block_n;
      continue;
    }
    BitReader br(in);
    for (size_t i = 0; i < block_n; ++i) {
      uint64_t adj = 0;
      RETURN_NOT_OK(br.ReadBits(width, &adj));
      prev += static_cast<int64_t>(adj) + min_delta;
      *dst++ = prev;
    }
    decoded += block_n;
  }
  return Status::OK();
}

// --- RLE ----------------------------------------------------------------------

void EncodeRleI64(const std::vector<int64_t>& in, ByteBuffer* out) {
  size_t i = 0;
  while (i < in.size()) {
    size_t j = i + 1;
    while (j < in.size() && in[j] == in[i]) ++j;
    out->PutVarintSigned64(in[i]);
    out->PutVarint64(j - i);
    i = j;
  }
}

Status DecodeRleI64(ByteReader* in, size_t count, std::vector<int64_t>* out) {
  out->clear();
  out->reserve(count);
  while (out->size() < count) {
    int64_t value = 0;
    RETURN_NOT_OK(in->GetVarintSigned64(&value));
    uint64_t run = 0;
    RETURN_NOT_OK(in->GetVarint64(&run));
    if (run == 0 || out->size() + run > count) {
      return Status::Corruption("RLE run overflows page point count");
    }
    out->insert(out->end(), static_cast<size_t>(run), value);
  }
  return Status::OK();
}

// --- SIMPLE8B ----------------------------------------------------------------

namespace {

struct Simple8bMode {
  uint32_t count;  // integers per word
  uint32_t bits;   // bits per integer
};

// Selector table (Anh & Moffat; the InfluxDB variant). Selector = index.
constexpr Simple8bMode kSimple8bModes[16] = {
    {240, 0}, {120, 0}, {60, 1}, {30, 2}, {20, 3}, {15, 4}, {12, 5}, {10, 6},
    {8, 7},   {7, 8},   {6, 10}, {5, 12}, {4, 15}, {3, 20}, {2, 30}, {1, 60},
};

}  // namespace

Status EncodeSimple8bU64(const std::vector<uint64_t>& in, ByteBuffer* out) {
  for (uint64_t v : in) {
    if (v >= (uint64_t{1} << 60)) {
      return Status::OutOfRange("simple8b value >= 2^60");
    }
  }
  size_t pos = 0;
  while (pos < in.size()) {
    // Greedy: find the densest selector that fits the next run.
    int chosen = -1;
    size_t chosen_n = 0;
    for (int sel = 0; sel < 16; ++sel) {
      const Simple8bMode mode = kSimple8bModes[sel];
      const size_t n = std::min<size_t>(mode.count, in.size() - pos);
      // Selectors 0/1 (0 bits) only apply when every packed value is 0 and
      // the run fills the word completely (count values available).
      if (mode.bits == 0) {
        if (in.size() - pos < mode.count) continue;
        bool all_zero = true;
        for (size_t i = 0; i < mode.count; ++i) {
          if (in[pos + i] != 0) {
            all_zero = false;
            break;
          }
        }
        if (!all_zero) continue;
        chosen = sel;
        chosen_n = mode.count;
        break;
      }
      bool fits = true;
      for (size_t i = 0; i < n; i += 1) {
        if ((in[pos + i] >> mode.bits) != 0) {
          fits = false;
          break;
        }
      }
      if (fits && n == mode.count) {
        chosen = sel;
        chosen_n = n;
        break;
      }
      if (fits && chosen == -1) {
        // Tail word: remember the densest selector that covers the whole
        // remainder.
        chosen = sel;
        chosen_n = n;
      }
    }
    if (chosen < 0) {
      return Status::OutOfRange("simple8b could not pack value");
    }
    const Simple8bMode mode = kSimple8bModes[chosen];
    uint64_t word = static_cast<uint64_t>(chosen) << 60;
    for (size_t i = 0; i < chosen_n && mode.bits > 0; ++i) {
      word |= in[pos + i] << (i * mode.bits);
    }
    out->PutFixed64(word);
    pos += chosen_n;
  }
  return Status::OK();
}

Status DecodeSimple8bU64(ByteReader* in, size_t count,
                         std::vector<uint64_t>* out) {
  out->clear();
  out->reserve(count);
  while (out->size() < count) {
    uint64_t word = 0;
    RETURN_NOT_OK(in->GetFixed64(&word));
    const uint32_t sel = static_cast<uint32_t>(word >> 60);
    const Simple8bMode mode = kSimple8bModes[sel];
    const uint64_t mask =
        mode.bits == 0 ? 0 : (~uint64_t{0} >> (64 - mode.bits));
    for (uint32_t i = 0; i < mode.count && out->size() < count; ++i) {
      out->push_back(mode.bits == 0 ? 0 : (word >> (i * mode.bits)) & mask);
    }
  }
  return Status::OK();
}

Status EncodeSimple8bDeltaI64(const std::vector<int64_t>& in,
                              ByteBuffer* out) {
  if (in.empty()) return Status::OK();
  out->PutVarintSigned64(in[0]);
  std::vector<uint64_t> zz(in.size() - 1);
  for (size_t i = 1; i < in.size(); ++i) {
    const int64_t delta = in[i] - in[i - 1];
    zz[i - 1] = (static_cast<uint64_t>(delta) << 1) ^
                static_cast<uint64_t>(delta >> 63);
  }
  return EncodeSimple8bU64(zz, out);
}

Status DecodeSimple8bDeltaI64(ByteReader* in, size_t count,
                              std::vector<int64_t>* out) {
  out->clear();
  if (count == 0) return Status::OK();
  out->reserve(count);
  int64_t first = 0;
  RETURN_NOT_OK(in->GetVarintSigned64(&first));
  out->push_back(first);
  std::vector<uint64_t> zz;
  RETURN_NOT_OK(DecodeSimple8bU64(in, count - 1, &zz));
  for (uint64_t u : zz) {
    const int64_t delta = static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
    out->push_back(out->back() + delta);
  }
  return Status::OK();
}

// --- GORILLA ---------------------------------------------------------------------

void EncodeGorillaF64(const std::vector<double>& in, ByteBuffer* out) {
  if (in.empty()) return;
  uint64_t prev = 0;
  std::memcpy(&prev, &in[0], sizeof(prev));
  out->PutFixed64(prev);
  BitWriter bw(out);
  int prev_leading = -1;
  int prev_meaningful = 0;
  for (size_t i = 1; i < in.size(); ++i) {
    uint64_t cur = 0;
    std::memcpy(&cur, &in[i], sizeof(cur));
    const uint64_t x = cur ^ prev;
    prev = cur;
    if (x == 0) {
      bw.WriteBit(false);
      continue;
    }
    bw.WriteBit(true);
    int leading = std::countl_zero(x);
    const int trailing = std::countr_zero(x);
    if (leading > 31) leading = 31;  // 5-bit field
    const int meaningful = 64 - leading - trailing;
    if (prev_leading >= 0 && leading >= prev_leading &&
        (64 - prev_leading - prev_meaningful) <= trailing) {
      // Fits inside the previous window: control bit 0.
      bw.WriteBit(false);
      bw.WriteBits(x >> (64 - prev_leading - prev_meaningful),
                   prev_meaningful);
    } else {
      // New window: control bit 1, 5 bits leading, 6 bits length.
      bw.WriteBit(true);
      bw.WriteBits(static_cast<uint64_t>(leading), 5);
      bw.WriteBits(static_cast<uint64_t>(meaningful), 6);
      bw.WriteBits(x >> trailing, meaningful);
      prev_leading = leading;
      prev_meaningful = meaningful;
    }
  }
  bw.Flush();
}

Status DecodeGorillaF64(ByteReader* in, size_t count,
                        std::vector<double>* out) {
  out->clear();
  if (count == 0) return Status::OK();
  out->resize(count);
  uint64_t prev = 0;
  RETURN_NOT_OK(in->GetFixed64(&prev));
  double* dst = out->data();
  std::memcpy(dst, &prev, sizeof(double));
  ++dst;
  BitReader br(in);
  int shift = 0;  // 64 - leading - meaningful, hoisted out of the loop
  int meaningful = 0;
  // Page-at-a-time unpack into pre-sized storage: repeated values (the
  // Gorilla fast case) cost one bit read and one store, and the XOR
  // window shift is recomputed only when the window changes.
  for (size_t i = 1; i < count; ++i) {
    bool changed = false;
    RETURN_NOT_OK(br.ReadBit(&changed));
    if (changed) {
      bool new_window = false;
      RETURN_NOT_OK(br.ReadBit(&new_window));
      if (new_window) {
        uint64_t lead = 0, len = 0;
        RETURN_NOT_OK(br.ReadBits(5, &lead));
        RETURN_NOT_OK(br.ReadBits(6, &len));
        const int leading = static_cast<int>(lead);
        meaningful = static_cast<int>(len);
        if (meaningful == 0) meaningful = 64;  // 6-bit field wraps at 64
        if (leading + meaningful > 64) {
          return Status::Corruption("gorilla window exceeds 64 bits");
        }
        shift = 64 - leading - meaningful;
      }
      uint64_t bits = 0;
      RETURN_NOT_OK(br.ReadBits(meaningful, &bits));
      prev ^= bits << shift;
    }
    std::memcpy(dst, &prev, sizeof(double));
    ++dst;
  }
  return Status::OK();
}

// --- dispatch ------------------------------------------------------------------

Status EncodeI64(Encoding e, const std::vector<int64_t>& in, ByteBuffer* out) {
  switch (e) {
    case Encoding::kPlain:
      EncodePlainI64(in, out);
      return Status::OK();
    case Encoding::kTs2Diff:
      EncodeTs2DiffI64(in, out);
      return Status::OK();
    case Encoding::kRle:
      EncodeRleI64(in, out);
      return Status::OK();
    case Encoding::kSimple8b:
      return EncodeSimple8bDeltaI64(in, out);
    case Encoding::kGorilla:
      return Status::NotSupported("GORILLA is a floating-point encoding");
  }
  return Status::InvalidArgument("unknown encoding");
}

Status DecodeI64(Encoding e, ByteReader* in, size_t count,
                 std::vector<int64_t>* out) {
  switch (e) {
    case Encoding::kPlain:
      return DecodePlainI64(in, count, out);
    case Encoding::kTs2Diff:
      return DecodeTs2DiffI64(in, count, out);
    case Encoding::kRle:
      return DecodeRleI64(in, count, out);
    case Encoding::kSimple8b:
      return DecodeSimple8bDeltaI64(in, count, out);
    case Encoding::kGorilla:
      return Status::NotSupported("GORILLA is a floating-point encoding");
  }
  return Status::InvalidArgument("unknown encoding");
}

Status EncodeF64(Encoding e, const std::vector<double>& in, ByteBuffer* out) {
  switch (e) {
    case Encoding::kPlain: {
      for (double v : in) {
        uint64_t u = 0;
        std::memcpy(&u, &v, sizeof(u));
        out->PutFixed64(u);
      }
      return Status::OK();
    }
    case Encoding::kGorilla:
      EncodeGorillaF64(in, out);
      return Status::OK();
    case Encoding::kTs2Diff:
    case Encoding::kRle:
    case Encoding::kSimple8b:
      return Status::NotSupported("integer encoding applied to doubles");
  }
  return Status::InvalidArgument("unknown encoding");
}

Status DecodeF64(Encoding e, ByteReader* in, size_t count,
                 std::vector<double>* out) {
  switch (e) {
    case Encoding::kPlain: {
      out->clear();
      out->reserve(count);
      for (size_t i = 0; i < count; ++i) {
        uint64_t u = 0;
        RETURN_NOT_OK(in->GetFixed64(&u));
        double v;
        std::memcpy(&v, &u, sizeof(v));
        out->push_back(v);
      }
      return Status::OK();
    }
    case Encoding::kGorilla:
      return DecodeGorillaF64(in, count, out);
    case Encoding::kTs2Diff:
    case Encoding::kRle:
    case Encoding::kSimple8b:
      return Status::NotSupported("integer encoding applied to doubles");
  }
  return Status::InvalidArgument("unknown encoding");
}

}  // namespace backsort
