#ifndef BACKSORT_ENCODING_ENCODING_H_
#define BACKSORT_ENCODING_ENCODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "encoding/bytes.h"

namespace backsort {

/// Column encodings, mirroring the families IoTDB ships for time series
/// pages. Timestamps default to TS_2DIFF; integer values to RLE; floating
/// values to GORILLA.
enum class Encoding : uint8_t {
  kPlain = 0,
  kTs2Diff = 1,
  kRle = 2,
  kGorilla = 3,
  kSimple8b = 4,
};

std::string EncodingName(Encoding e);

// --- PLAIN ---------------------------------------------------------------

void EncodePlainI64(const std::vector<int64_t>& in, ByteBuffer* out);
Status DecodePlainI64(ByteReader* in, size_t count, std::vector<int64_t>* out);

// --- TS_2DIFF (delta with per-block min-delta and bit packing) -----------

/// IoTDB's default timestamp encoding: values are delta-encoded, deltas are
/// grouped in blocks of 128, each block stores its minimum delta and bit-
/// packs (delta - min_delta) with the block-wide bit width. Monotone
/// timestamps compress to ~1-2 bits per point.
void EncodeTs2DiffI64(const std::vector<int64_t>& in, ByteBuffer* out);
Status DecodeTs2DiffI64(ByteReader* in, size_t count,
                        std::vector<int64_t>* out);

// --- RLE ------------------------------------------------------------------

/// Run-length encoding of (value, run) pairs with varint lengths; effective
/// for slowly changing integer sensors.
void EncodeRleI64(const std::vector<int64_t>& in, ByteBuffer* out);
Status DecodeRleI64(ByteReader* in, size_t count, std::vector<int64_t>* out);

// --- SIMPLE8B ---------------------------------------------------------------

/// Simple8b (Anh & Moffat) word-aligned packing: each 64-bit word carries a
/// 4-bit selector and up to 240 small integers. All values must be
/// < 2^60; returns OutOfRange otherwise (callers fall back to another
/// encoding, as InfluxDB does).
Status EncodeSimple8bU64(const std::vector<uint64_t>& in, ByteBuffer* out);
Status DecodeSimple8bU64(ByteReader* in, size_t count,
                         std::vector<uint64_t>* out);

/// Timestamp-oriented wrapper: first value as signed varint, then the
/// zigzagged deltas packed with Simple8b.
Status EncodeSimple8bDeltaI64(const std::vector<int64_t>& in, ByteBuffer* out);
Status DecodeSimple8bDeltaI64(ByteReader* in, size_t count,
                              std::vector<int64_t>* out);

// --- GORILLA ---------------------------------------------------------------

/// Facebook Gorilla XOR compression for doubles (and floats via the double
/// path): XOR against the previous value, encode leading/meaningful bit
/// windows.
void EncodeGorillaF64(const std::vector<double>& in, ByteBuffer* out);
Status DecodeGorillaF64(ByteReader* in, size_t count,
                        std::vector<double>* out);

// --- dispatch helpers used by the TsFile page writer -----------------------

Status EncodeI64(Encoding e, const std::vector<int64_t>& in, ByteBuffer* out);
Status DecodeI64(Encoding e, ByteReader* in, size_t count,
                 std::vector<int64_t>* out);
Status EncodeF64(Encoding e, const std::vector<double>& in, ByteBuffer* out);
Status DecodeF64(Encoding e, ByteReader* in, size_t count,
                 std::vector<double>* out);

}  // namespace backsort

#endif  // BACKSORT_ENCODING_ENCODING_H_
