#ifndef BACKSORT_ENCODING_BYTES_H_
#define BACKSORT_ENCODING_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace backsort {

/// Growable little-endian byte sink used by all encoders and the TsFile
/// writer.
class ByteBuffer {
 public:
  void PutU8(uint8_t v) { data_.push_back(v); }

  // The fixed-width writers stage into a local array and append with one
  // insert: eight separate push_backs cost a capacity check and branch
  // each, which dominates hot encode loops (point batches, TsFile pages);
  // the shift form keeps the output little-endian on any host and
  // compiles to a plain store where the host already is.
  void PutFixed32(uint32_t v) {
    uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = (v >> (8 * i)) & 0xff;
    PutBytes(b, 4);
  }

  void PutFixed64(uint64_t v) {
    uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = (v >> (8 * i)) & 0xff;
    PutBytes(b, 8);
  }

  void PutBytes(const void* src, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(src);
    data_.insert(data_.end(), p, p + n);
  }

  /// LEB128 unsigned varint.
  void PutVarint64(uint64_t v) {
    while (v >= 0x80) {
      data_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    data_.push_back(static_cast<uint8_t>(v));
  }

  /// Zigzag-mapped signed varint.
  void PutVarintSigned64(int64_t v) {
    PutVarint64((static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63));
  }

  void PutLengthPrefixedString(std::string_view s) {
    PutVarint64(s.size());
    PutBytes(s.data(), s.size());
  }

  /// Overwrites 4 already-written bytes at `offset` with `v` in little
  /// endian — for fixed-width fields (frame sizes, CRCs) whose value is
  /// only known after the bytes that follow them have been encoded.
  void PatchFixed32(size_t offset, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      data_.at(offset + static_cast<size_t>(i)) = (v >> (8 * i)) & 0xff;
    }
  }

  const std::vector<uint8_t>& data() const { return data_; }
  size_t size() const { return data_.size(); }
  void Clear() { data_.clear(); }

  void Append(const ByteBuffer& other) {
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  }

 private:
  std::vector<uint8_t> data_;
};

/// Bounds-checked sequential reader over a byte span. Every accessor
/// returns Corruption instead of reading past the end, so truncated or
/// damaged files fail cleanly (failure-injection tests rely on this).
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ >= size_; }

  Status GetU8(uint8_t* out) {
    if (remaining() < 1) return Truncated("u8");
    *out = data_[pos_++];
    return Status::OK();
  }

  Status GetFixed32(uint32_t* out) {
    if (remaining() < 4) return Truncated("fixed32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    *out = v;
    return Status::OK();
  }

  Status GetFixed64(uint64_t* out) {
    if (remaining() < 8) return Truncated("fixed64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    *out = v;
    return Status::OK();
  }

  // All bounds checks compare the requested count against remaining()
  // rather than computing pos_ + n, which would wrap for attacker-chosen
  // n near SIZE_MAX and let the check pass (these decoders see raw
  // network payloads, where every length field is untrusted).
  Status GetBytes(void* dst, size_t n) {
    if (n > remaining()) return Truncated("bytes");
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status GetVarint64(uint64_t* out) {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_) return Truncated("varint");
      const uint8_t byte = data_[pos_++];
      if (shift >= 63 && byte > 1) {
        return Status::Corruption("varint64 overflow");
      }
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    *out = v;
    return Status::OK();
  }

  Status GetVarintSigned64(int64_t* out) {
    uint64_t u = 0;
    RETURN_NOT_OK(GetVarint64(&u));
    *out = static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
    return Status::OK();
  }

  Status GetLengthPrefixedString(std::string* out) {
    uint64_t len = 0;
    RETURN_NOT_OK(GetVarint64(&len));
    if (len > remaining()) return Truncated("string body");
    out->assign(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return Status::OK();
  }

  Status Skip(size_t n) {
    if (n > remaining()) return Truncated("skip");
    pos_ += n;
    return Status::OK();
  }

 private:
  Status Truncated(const char* what) {
    return Status::Corruption(std::string("buffer truncated reading ") + what);
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace backsort

#endif  // BACKSORT_ENCODING_BYTES_H_
