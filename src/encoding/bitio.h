#ifndef BACKSORT_ENCODING_BITIO_H_
#define BACKSORT_ENCODING_BITIO_H_

#include <cstdint>

#include "common/status.h"
#include "encoding/bytes.h"

namespace backsort {

/// MSB-first bit sink on top of ByteBuffer; used by TS_2DIFF bit packing
/// and Gorilla XOR encoding.
class BitWriter {
 public:
  explicit BitWriter(ByteBuffer* out) : out_(out) {}

  /// Writes the low `bits` bits of `value`, most significant first.
  void WriteBits(uint64_t value, int bits) {
    for (int i = bits - 1; i >= 0; --i) {
      current_ = static_cast<uint8_t>((current_ << 1) |
                                      ((value >> i) & 1));
      if (++filled_ == 8) {
        out_->PutU8(current_);
        current_ = 0;
        filled_ = 0;
      }
    }
  }

  void WriteBit(bool bit) { WriteBits(bit ? 1 : 0, 1); }

  /// Pads the final partial byte with zero bits.
  void Flush() {
    if (filled_ > 0) {
      out_->PutU8(static_cast<uint8_t>(current_ << (8 - filled_)));
      current_ = 0;
      filled_ = 0;
    }
  }

 private:
  ByteBuffer* out_;
  uint8_t current_ = 0;
  int filled_ = 0;
};

/// MSB-first bit source over a ByteReader-owned span.
class BitReader {
 public:
  explicit BitReader(ByteReader* in) : in_(in) {}

  /// Byte-at-a-time fast path: drains the buffered partial byte, then
  /// consumes whole bytes, then tops up from one more byte — at most three
  /// bounds checks per call instead of one per bit. This is the inner loop
  /// of every TS_2DIFF block unpack and Gorilla window read, so page-at-a-
  /// time decode spends its cycles in byte moves, not bit shuffling.
  Status ReadBits(int bits, uint64_t* out) {
    uint64_t v = 0;
    int need = bits;
    if (filled_ > 0) {
      const int take = need < filled_ ? need : filled_;
      v = (current_ >> (filled_ - take)) &
          static_cast<uint8_t>(0xffu >> (8 - take));
      filled_ -= take;
      need -= take;
    }
    while (need >= 8) {
      uint8_t b = 0;
      RETURN_NOT_OK(in_->GetU8(&b));
      v = (v << 8) | b;
      need -= 8;
    }
    if (need > 0) {
      RETURN_NOT_OK(in_->GetU8(&current_));
      filled_ = 8 - need;
      v = (v << need) | (current_ >> filled_);
    }
    *out = v;
    return Status::OK();
  }

  Status ReadBit(bool* out) {
    uint64_t v = 0;
    RETURN_NOT_OK(ReadBits(1, &v));
    *out = v != 0;
    return Status::OK();
  }

  /// Discards buffered bits so the underlying reader is byte-aligned again.
  void AlignToByte() { filled_ = 0; }

 private:
  ByteReader* in_;
  uint8_t current_ = 0;
  int filled_ = 0;
};

/// Number of bits needed to represent v (0 needs 0 bits).
inline int BitWidthOf(uint64_t v) {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

}  // namespace backsort

#endif  // BACKSORT_ENCODING_BITIO_H_
