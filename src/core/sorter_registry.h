#ifndef BACKSORT_CORE_SORTER_REGISTRY_H_
#define BACKSORT_CORE_SORTER_REGISTRY_H_

#include <string>
#include <vector>

#include "core/backward_sort.h"
#include "sort/ck_sort.h"
#include "sort/dual_pivot_quicksort.h"
#include "sort/insertion_sort.h"
#include "sort/merge_sort.h"
#include "sort/patience_sort.h"
#include "sort/quicksort.h"
#include "sort/radix_sort.h"
#include "sort/smoothsort.h"
#include "sort/sortable.h"
#include "sort/std_sort.h"
#include "sort/timsort.h"
#include "sort/y_sort.h"

namespace backsort {

/// Every sorting algorithm the evaluation compares. The first six are the
/// algorithms benchmarked in the paper (Section VI-A1); the rest are extra
/// reference points.
enum class SorterId {
  kBackward,
  kQuick,
  kTim,
  kPatience,
  kCk,
  kY,
  kInsertion,
  kMerge,
  kSmooth,
  kStd,
  kDualPivot,
  kRadix,
};

/// Display name matching the paper's figure legends ("Back", "Quick", ...).
std::string SorterName(SorterId id);

/// Reverse lookup by display name (case-sensitive). Returns false for
/// unknown names. Used by CLI tools.
bool SorterFromName(const std::string& name, SorterId* out);

/// The six algorithms of the paper's comparison figures, in legend order.
std::vector<SorterId> PaperSorters();

/// All registered sorters.
std::vector<SorterId> AllSorters();

/// Dispatches to the chosen algorithm. `options` only affects kBackward.
template <typename Seq>
void SortWith(SorterId id, Seq& seq,
              const BackwardSortOptions& options = {},
              BackwardSortStats* stats = nullptr) {
  switch (id) {
    case SorterId::kBackward:
      BackwardSort(seq, options, stats);
      break;
    case SorterId::kQuick:
      QuickSort(seq);
      break;
    case SorterId::kTim:
      TimSort(seq);
      break;
    case SorterId::kPatience:
      PatienceSort(seq);
      break;
    case SorterId::kCk:
      CkSort(seq);
      break;
    case SorterId::kY:
      YSort(seq);
      break;
    case SorterId::kInsertion:
      InsertionSort(seq);
      break;
    case SorterId::kMerge:
      MergeSort(seq);
      break;
    case SorterId::kSmooth:
      SmoothSort(seq);
      break;
    case SorterId::kStd:
      StdSort(seq);
      break;
    case SorterId::kDualPivot:
      DualPivotQuickSort(seq);
      break;
    case SorterId::kRadix:
      RadixSort(seq);
      break;
  }
}

}  // namespace backsort

#endif  // BACKSORT_CORE_SORTER_REGISTRY_H_
