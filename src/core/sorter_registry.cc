#include "core/sorter_registry.h"

namespace backsort {

std::string SorterName(SorterId id) {
  switch (id) {
    case SorterId::kBackward:
      return "Back";
    case SorterId::kQuick:
      return "Quick";
    case SorterId::kTim:
      return "Timsort";
    case SorterId::kPatience:
      return "Patience";
    case SorterId::kCk:
      return "CKSort";
    case SorterId::kY:
      return "YSort";
    case SorterId::kInsertion:
      return "Insertion";
    case SorterId::kMerge:
      return "Merge";
    case SorterId::kSmooth:
      return "Smooth";
    case SorterId::kStd:
      return "StdSort";
    case SorterId::kDualPivot:
      return "DualPivot";
    case SorterId::kRadix:
      return "Radix";
  }
  return "unknown";
}

bool SorterFromName(const std::string& name, SorterId* out) {
  for (SorterId id : AllSorters()) {
    if (SorterName(id) == name) {
      *out = id;
      return true;
    }
  }
  return false;
}

std::vector<SorterId> PaperSorters() {
  return {SorterId::kBackward, SorterId::kQuick,    SorterId::kTim,
          SorterId::kPatience, SorterId::kCk,       SorterId::kY};
}

std::vector<SorterId> AllSorters() {
  return {SorterId::kBackward,  SorterId::kQuick,  SorterId::kTim,
          SorterId::kPatience,  SorterId::kCk,     SorterId::kY,
          SorterId::kInsertion, SorterId::kMerge,  SorterId::kSmooth,
          SorterId::kStd,       SorterId::kDualPivot, SorterId::kRadix};
}

}  // namespace backsort
