#ifndef BACKSORT_CORE_BACKWARD_SORT_H_
#define BACKSORT_CORE_BACKWARD_SORT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sort/insertion_sort.h"
#include "sort/quicksort.h"
#include "sort/sortable.h"
#include "sort/timsort.h"

namespace backsort {

/// Tuning knobs for Backward-Sort (Algorithm 1 of the paper).
struct BackwardSortOptions {
  /// L0 — the starting block size of the set-block-size loop. The paper
  /// fixes 4: large enough to avoid degenerating toward Insertion-Sort,
  /// small enough never to overshoot the optimum (Fig. 8b discussion).
  size_t initial_block_size = 4;

  /// Theta — the empirical interval-inversion-ratio threshold that stops
  /// the block-size doubling. The paper's fixed empirical choice is 0.04.
  double theta = 0.04;

  /// When non-zero, skips the set-block-size loop entirely and uses this
  /// block size — the manual-L mode of the Fig. 8b parameter-tuning sweep.
  size_t fixed_block_size = 0;

  /// Which algorithm sorts each block (Algorithm 1 line 11 "Quicksort is
  /// used in default and can be substituted").
  enum class BlockSorter { kQuick, kInsertion, kTim };
  BlockSorter block_sorter = BlockSorter::kQuick;

  /// How the block size is selected when `fixed_block_size` is 0.
  ///  - kThetaDoubling: Algorithm 1 lines 1-8 (double L until the
  ///    empirical IIR drops below theta) — the paper's shipped strategy.
  ///  - kOverlapProportional: estimate the expected overlap Q via
  ///    Proposition 4 (E(Q) = sum_k tail(k) = sum_k E(alpha_k)) and set
  ///    L = eta * Q_hat per Proposition 5's optimum — the "future work"
  ///    estimator the paper sketches in Section IV-B3.
  enum class BlockSizeStrategy { kThetaDoubling, kOverlapProportional };
  BlockSizeStrategy strategy = BlockSizeStrategy::kThetaDoubling;

  /// Proportionality constant of kOverlapProportional (the eta of
  /// Proposition 5; L* = eta * Q at the optimum of g(L)).
  double eta = 4.0;
};

/// Observability counters filled by BackwardSort; used by the ablation
/// benches and by the property tests for Propositions 3 and 4.
struct BackwardSortStats {
  size_t chosen_block_size = 0;
  size_t block_count = 0;
  /// Iterations of the set-block-size while loop (P in Table I).
  size_t set_block_size_iterations = 0;
  /// Number of boundary pairs inspected by the empirical IIR estimator
  /// across all iterations — Proposition 3 bounds this by 2 n / L0.
  uint64_t iir_samples_scanned = 0;
  /// Sum over merged boundaries of the overlap length q (Q in Table I).
  uint64_t total_overlap = 0;
  size_t max_overlap = 0;
  /// Boundaries where the fast path (block max <= suffix head) applied.
  size_t merges_skipped = 0;
  size_t merges_performed = 0;
};

namespace core_internal {

template <typename Seq>
void SortBlock(Seq& seq, size_t lo, size_t hi,
               BackwardSortOptions::BlockSorter which) {
  switch (which) {
    case BackwardSortOptions::BlockSorter::kQuick:
      QuickSortRange(seq, lo, hi);
      break;
    case BackwardSortOptions::BlockSorter::kInsertion:
      InsertionSortRange(seq, lo, hi);
      break;
    case BackwardSortOptions::BlockSorter::kTim: {
      // TimSorter works on whole sequences; wrap the range in a view.
      struct RangeView {
        using Element = typename Seq::Element;
        Seq* inner;
        size_t base;
        size_t len;
        size_t size() const { return len; }
        Timestamp TimeAt(size_t i) const { return inner->TimeAt(base + i); }
        Element Get(size_t i) const { return inner->Get(base + i); }
        void Set(size_t i, const Element& e) { inner->Set(base + i, e); }
        void Swap(size_t i, size_t j) { inner->Swap(base + i, base + j); }
        static Timestamp ElementTime(const Element& e) {
          return Seq::ElementTime(e);
        }
        OpCounters& counters() { return inner->counters(); }
      };
      RangeView view{&seq, lo, hi - lo};
      TimSort(view);
      break;
    }
  }
}

}  // namespace core_internal

/// Chooses the block size per Algorithm 1 lines 1-8: starting from L0,
/// estimate the empirical IIR at stride L (Example 5's down-sampling) and
/// double L until the ratio falls below theta or L reaches n. Exposed
/// separately so tests can validate Proposition 3's scan bound.
template <typename Seq>
size_t ChooseBlockSize(const Seq& seq, const BackwardSortOptions& options,
                       BackwardSortStats* stats) {
  const size_t n = seq.size();
  size_t L = std::max<size_t>(options.initial_block_size, 1);
  while (L < n) {
    uint64_t samples = 0;
    uint64_t inverted = 0;
    for (size_t j = 0; j + L < n; j += L) {
      ++samples;
      if (seq.TimeAt(j) > seq.TimeAt(j + L)) ++inverted;
    }
    if (stats != nullptr) {
      ++stats->set_block_size_iterations;
      stats->iir_samples_scanned += samples;
    }
    const double alpha =
        samples == 0 ? 0.0
                     : static_cast<double>(inverted) /
                           static_cast<double>(samples);
    if (alpha < options.theta) break;
    L *= 2;  // updateBlockSizeByRatio, Eq. 15
  }
  return std::min(L, n);
}

/// Estimates the expected block overlap Q of Proposition 4 without knowing
/// the delay distribution: E(Q) = sum_{k>=0} tail_{delta_tau}(k) and
/// E(alpha_k) = tail(k) (Proposition 2), so Q_hat integrates the empirical
/// IIR curve sampled at exponentially spaced intervals. Total cost is O(n)
/// (a stride-k scan per sampled interval k).
template <typename Seq>
double EstimateOverlapQ(const Seq& seq, BackwardSortStats* stats = nullptr) {
  const size_t n = seq.size();
  if (n < 2) return 0.0;
  double q_hat = 0.0;
  double alpha1 = 0.0;
  double alpha2 = 0.0;
  size_t prev_k = 0;
  for (size_t k = 1; k < n; k *= 2) {
    uint64_t samples = 0;
    uint64_t inverted = 0;
    for (size_t j = 0; j + k < n; j += k) {
      ++samples;
      if (seq.TimeAt(j) > seq.TimeAt(j + k)) ++inverted;
    }
    if (stats != nullptr) stats->iir_samples_scanned += samples;
    if (samples == 0) break;
    const double alpha =
        static_cast<double>(inverted) / static_cast<double>(samples);
    if (k == 1) alpha1 = alpha;
    if (k == 2) alpha2 = alpha;
    // alpha approximates tail(k); treat the tail as constant over the gap
    // (prev_k, k] — a step integration of sum_{j in gap} tail(j).
    q_hat += alpha * static_cast<double>(k - prev_k);
    if (alpha == 0.0) break;  // tail is monotone; nothing further to add
    prev_k = k;
  }
  // The k = 0 term tail(0) = P(delta_tau > 0) is not observable from
  // inversions (an interval-0 inversion is undefined). Extrapolate the
  // monotone tail linearly back from alpha_1, alpha_2, capped by the
  // symmetry bound P(delta_tau > 0) <= 1/2 (Proposition 1).
  const double tail0 =
      std::min(0.5, std::max(alpha1, 2.0 * alpha1 - alpha2));
  return q_hat + tail0;
}

/// Chooses L = clamp(eta * Q_hat) per Proposition 5 (optimal L is
/// proportional to the expected overlap).
template <typename Seq>
size_t ChooseBlockSizeByOverlap(const Seq& seq,
                                const BackwardSortOptions& options,
                                BackwardSortStats* stats) {
  const size_t n = seq.size();
  const double q_hat = EstimateOverlapQ(seq, stats);
  if (stats != nullptr) ++stats->set_block_size_iterations;
  const double target = options.eta * q_hat;
  size_t L = std::max<size_t>(options.initial_block_size, 1);
  while (L < n && static_cast<double>(L) < target) {
    L *= 2;
  }
  return std::min(L, n);
}

/// Backward-Sort (Algorithm 1): set block size, sort each block locally,
/// then merge blocks back-to-front touching only the overlapping prefix of
/// the already-sorted suffix. With L = 1 it degenerates to Insertion-Sort;
/// with L = n to plain (middle-pivot) Quicksort (Proposition 5 / Fig. 6).
template <typename Seq>
void BackwardSort(Seq& seq, const BackwardSortOptions& options = {},
                  BackwardSortStats* stats = nullptr) {
  using Element = typename Seq::Element;
  const size_t n = seq.size();
  if (n < 2) return;

  // --- Part 1: set block size -------------------------------------------
  size_t L;
  if (options.fixed_block_size > 0) {
    L = std::min(options.fixed_block_size, n);
  } else if (options.strategy ==
             BackwardSortOptions::BlockSizeStrategy::kOverlapProportional) {
    L = ChooseBlockSizeByOverlap(seq, options, stats);
  } else {
    L = ChooseBlockSize(seq, options, stats);
  }
  if (L < 1) L = 1;

  // --- Part 2: sort by blocks -------------------------------------------
  // B = floor(n / L) blocks; the final block absorbs the n % L remainder so
  // every point belongs to exactly one block.
  const size_t B = std::max<size_t>(n / L, 1);
  if (stats != nullptr) {
    stats->chosen_block_size = L;
    stats->block_count = B;
  }
  for (size_t b = 0; b < B; ++b) {
    const size_t lo = b * L;
    const size_t hi = (b + 1 == B) ? n : (b + 1) * L;
    core_internal::SortBlock(seq, lo, hi, options.block_sorter);
  }
  if (B == 1) return;

  // --- Part 3: backward merge -------------------------------------------
  std::vector<Element> scratch;
  for (size_t b = B - 1; b-- > 0;) {
    const size_t lo = b * L;
    const size_t block_end = (b + 1) * L;
    const Timestamp block_max = seq.TimeAt(block_end - 1);
    // Fast path: the entire block already precedes the sorted suffix.
    ++seq.counters().comparisons;
    if (block_max <= seq.TimeAt(block_end)) {
      if (stats != nullptr) ++stats->merges_skipped;
      continue;
    }
    // findOverlappedBlock: binary-search the sorted suffix for the first
    // point >= block_max; everything before it overlaps the block. The
    // search may land inside any later block (k in Algorithm 1 line 14).
    size_t q_lo = block_end;
    size_t q_hi = n;
    while (q_lo < q_hi) {
      const size_t mid = q_lo + (q_hi - q_lo) / 2;
      ++seq.counters().comparisons;
      if (seq.TimeAt(mid) < block_max) {
        q_lo = mid + 1;
      } else {
        q_hi = mid;
      }
    }
    const size_t q = q_lo - block_end;  // overlap length
    if (stats != nullptr) {
      ++stats->merges_performed;
      stats->total_overlap += q;
      stats->max_overlap = std::max(stats->max_overlap, q);
    }
    // BackwardMerge: move the q overlapping suffix points into scratch,
    // then merge block and scratch from the right end so every point lands
    // in its final slot with at most one move (overlap points: two).
    scratch.clear();
    scratch.reserve(q);
    for (size_t i = block_end; i < block_end + q; ++i) {
      scratch.push_back(seq.Get(i));
      ++seq.counters().moves;
    }
    sort_internal::NoteScratchIfSupported(seq, scratch.size());
    ptrdiff_t a = static_cast<ptrdiff_t>(block_end) - 1;
    ptrdiff_t s = static_cast<ptrdiff_t>(q) - 1;
    ptrdiff_t w = static_cast<ptrdiff_t>(block_end + q) - 1;
    const ptrdiff_t a_begin = static_cast<ptrdiff_t>(lo);
    while (a >= a_begin && s >= 0) {
      ++seq.counters().comparisons;
      if (seq.TimeAt(static_cast<size_t>(a)) >
          Seq::ElementTime(scratch[static_cast<size_t>(s)])) {
        seq.Set(static_cast<size_t>(w--), seq.Get(static_cast<size_t>(a--)));
      } else {
        seq.Set(static_cast<size_t>(w--), scratch[static_cast<size_t>(s--)]);
      }
    }
    while (s >= 0) {
      seq.Set(static_cast<size_t>(w--), scratch[static_cast<size_t>(s--)]);
    }
    // Block points left of `a` are already in place — the backward move
    // economy of Example 3.
  }
}

}  // namespace backsort

#endif  // BACKSORT_CORE_BACKWARD_SORT_H_
