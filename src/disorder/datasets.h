#ifndef BACKSORT_DISORDER_DATASETS_H_
#define BACKSORT_DISORDER_DATASETS_H_

#include <memory>
#include <string>
#include <vector>

#include "disorder/delay_distribution.h"

namespace backsort {

/// Named workload datasets matching the paper's evaluation section.
///
/// The synthetic families (AbsNormal, LogNormal) are exactly the paper's.
/// The four real-world datasets (CitiBike 201808/201902 trips, Samsung d5/
/// s10 sensor logs) are not redistributable, so this repository ships
/// surrogate delay mixtures calibrated to reproduce the property Figure 8a
/// shows actually matters for sorting: the decay profile of the interval
/// inversion ratio. Samsung-like surrogates have short-range delays (IIR
/// reaches 0 by L = 2^5); CitiBike-like surrogates mix in sparse heavy-tailed
/// delays so the IIR stays positive up to L around 2^16. See DESIGN.md §3.
enum class DatasetId {
  kAbsNormal,      // parameterized by mu/sigma at construction
  kLogNormal,      // parameterized by mu/sigma at construction
  kCitibike201808, // heavy-tailed surrogate, more disordered
  kCitibike201902, // heavy-tailed surrogate, less disordered
  kSamsungD5,      // short-range surrogate, mildly disordered
  kSamsungS10,     // short-range surrogate, moderately disordered
};

/// Builds the delay distribution for a named real-world-like dataset.
/// DatasetId::kAbsNormal / kLogNormal are rejected here (use the
/// distribution classes directly with explicit mu/sigma).
std::unique_ptr<DelayDistribution> MakeDatasetDelay(DatasetId id);

/// Display name used in benchmark tables ("citibike-201808", ...).
std::string DatasetName(DatasetId id);

/// The four real-world-like datasets, in the order the paper plots them.
std::vector<DatasetId> RealWorldDatasets();

}  // namespace backsort

#endif  // BACKSORT_DISORDER_DATASETS_H_
