#include "disorder/datasets.h"

#include <utility>

namespace backsort {

namespace {

std::unique_ptr<DelayDistribution> MakeHeavyTailSurrogate(double base_lambda,
                                                          double tail_mu,
                                                          double tail_sigma,
                                                          double tail_weight,
                                                          double cap,
                                                          std::string name) {
  auto base = std::make_unique<ExponentialDelay>(base_lambda);
  auto tail = std::make_unique<CappedDelay>(
      std::make_unique<LogNormalDelay>(tail_mu, tail_sigma), cap);
  return std::make_unique<MixtureDelay>(std::move(base), std::move(tail),
                                        tail_weight, std::move(name));
}

}  // namespace

std::unique_ptr<DelayDistribution> MakeDatasetDelay(DatasetId id) {
  switch (id) {
    case DatasetId::kCitibike201808:
      // More disordered of the two CitiBike months: 6% of points carry a
      // heavy LogNormal tail reaching ~6e4 intervals, so alpha_L > 0 until
      // L ~ 2^16 (paper Fig. 8a).
      return MakeHeavyTailSurrogate(/*base_lambda=*/0.5, /*tail_mu=*/7.0,
                                    /*tail_sigma=*/1.8, /*tail_weight=*/0.06,
                                    /*cap=*/6e4, "citibike-201808");
    case DatasetId::kCitibike201902:
      return MakeHeavyTailSurrogate(/*base_lambda=*/1.0, /*tail_mu=*/6.0,
                                    /*tail_sigma=*/1.6, /*tail_weight=*/0.03,
                                    /*cap=*/6e4, "citibike-201902");
    case DatasetId::kSamsungD5: {
      // Mildly disordered short-range delays; max displacement < 2^5 so the
      // IIR is exactly 0 from L = 32 up.
      auto ordered = std::make_unique<ConstantDelay>(0.0);
      auto jitter = std::make_unique<DiscreteUniformDelay>(1, 12);
      return std::make_unique<MixtureDelay>(std::move(ordered),
                                            std::move(jitter), 0.02,
                                            "samsung-d5");
    }
    case DatasetId::kSamsungS10: {
      auto ordered = std::make_unique<ConstantDelay>(0.0);
      auto jitter = std::make_unique<DiscreteUniformDelay>(1, 28);
      return std::make_unique<MixtureDelay>(std::move(ordered),
                                            std::move(jitter), 0.08,
                                            "samsung-s10");
    }
    case DatasetId::kAbsNormal:
    case DatasetId::kLogNormal:
      break;
  }
  return nullptr;
}

std::string DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kAbsNormal:
      return "AbsNormal";
    case DatasetId::kLogNormal:
      return "LogNormal";
    case DatasetId::kCitibike201808:
      return "citibike-201808";
    case DatasetId::kCitibike201902:
      return "citibike-201902";
    case DatasetId::kSamsungD5:
      return "samsung-d5";
    case DatasetId::kSamsungS10:
      return "samsung-s10";
  }
  return "unknown";
}

std::vector<DatasetId> RealWorldDatasets() {
  return {DatasetId::kCitibike201808, DatasetId::kCitibike201902,
          DatasetId::kSamsungD5, DatasetId::kSamsungS10};
}

}  // namespace backsort
