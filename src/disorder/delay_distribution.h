#ifndef BACKSORT_DISORDER_DELAY_DISTRIBUTION_H_
#define BACKSORT_DISORDER_DELAY_DISTRIBUTION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace backsort {

/// A distribution D of non-negative point delays (Definition 5). The
/// generation times are evenly spaced at interval 1; the arrival time of
/// point i is i + tau_i with tau_i ~ D i.i.d. The shape of D fully
/// determines the degree of out-of-order (Proposition 2: E(alpha_L) =
/// P(delta_tau > L)).
class DelayDistribution {
 public:
  virtual ~DelayDistribution() = default;

  /// Draws one delay. Results are always >= 0 (delay-only feature).
  virtual double Sample(Rng& rng) const = 0;

  /// Display name used by benchmark output, e.g. "AbsNormal(1,10)".
  virtual std::string Name() const = 0;
};

/// |N(mu, sigma)| — the "AbsNormal" synthetic workload of the paper
/// (folded normal delay).
class AbsNormalDelay : public DelayDistribution {
 public:
  AbsNormalDelay(double mu, double sigma);
  double Sample(Rng& rng) const override;
  std::string Name() const override;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

/// LogNormal(mu, sigma): exp(N(mu, sigma)). sigma == 0 degenerates to the
/// constant exp(mu), which produces a fully ordered arrival sequence.
class LogNormalDelay : public DelayDistribution {
 public:
  LogNormalDelay(double mu, double sigma);
  double Sample(Rng& rng) const override;
  std::string Name() const override;

 private:
  double mu_;
  double sigma_;
};

/// Exponential(lambda), used by Example 6 / Figure 5 where the delta-tau
/// density and the interval inversion ratio have closed forms
/// (E(alpha_L) = exp(-lambda L) / 2).
class ExponentialDelay : public DelayDistribution {
 public:
  explicit ExponentialDelay(double lambda);
  double Sample(Rng& rng) const override;
  std::string Name() const override;

  double lambda() const { return lambda_; }

 private:
  double lambda_;
};

/// Uniform over the integers {lo, ..., hi}; Example 7 uses {0,1,2,3}.
class DiscreteUniformDelay : public DelayDistribution {
 public:
  DiscreteUniformDelay(int64_t lo, int64_t hi);
  double Sample(Rng& rng) const override;
  std::string Name() const override;

 private:
  int64_t lo_;
  int64_t hi_;
};

/// Always returns the same delay; yields a perfectly ordered arrival
/// sequence (useful as the sigma = 0 baseline).
class ConstantDelay : public DelayDistribution {
 public:
  explicit ConstantDelay(double value);
  double Sample(Rng& rng) const override;
  std::string Name() const override;

 private:
  double value_;
};

/// Two-component mixture: with probability `weight_b` draws from `b`,
/// otherwise from `a`. Used to build the heavy-tailed real-world surrogate
/// datasets (a mostly-ordered stream with a sparse population of long
/// delays).
class MixtureDelay : public DelayDistribution {
 public:
  MixtureDelay(std::unique_ptr<DelayDistribution> a,
               std::unique_ptr<DelayDistribution> b, double weight_b,
               std::string name);
  double Sample(Rng& rng) const override;
  std::string Name() const override;

 private:
  std::unique_ptr<DelayDistribution> a_;
  std::unique_ptr<DelayDistribution> b_;
  double weight_b_;
  std::string name_;
};

/// Regime-switching delay — an extension beyond the paper's i.i.d. model
/// (Definition 5): the stream alternates between a calm regime (`base`
/// delays) and bursts of `burst_len` consecutive points with `burst` delays
/// added, every `period` points. Models the "network fluctuation" cause of
/// disorder, where congestion delays whole spans of points together.
/// Stateful: samples must be drawn in arrival order, one per point.
class BurstyDelay : public DelayDistribution {
 public:
  BurstyDelay(std::unique_ptr<DelayDistribution> base,
              std::unique_ptr<DelayDistribution> burst, size_t period,
              size_t burst_len);
  double Sample(Rng& rng) const override;
  std::string Name() const override;

 private:
  std::unique_ptr<DelayDistribution> base_;
  std::unique_ptr<DelayDistribution> burst_;
  size_t period_;
  size_t burst_len_;
  mutable size_t counter_ = 0;
};

/// Mixture delay whose heavy component is capped at `cap` — keeps the
/// surrogate datasets inside the "not-too-distant" regime enforced by
/// IoTDB's separation policy (extreme delays are routed to the unsequence
/// memtable before sorting, so they never reach the sorter).
class CappedDelay : public DelayDistribution {
 public:
  CappedDelay(std::unique_ptr<DelayDistribution> inner, double cap);
  double Sample(Rng& rng) const override;
  std::string Name() const override;

 private:
  std::unique_ptr<DelayDistribution> inner_;
  double cap_;
};

}  // namespace backsort

#endif  // BACKSORT_DISORDER_DELAY_DISTRIBUTION_H_
