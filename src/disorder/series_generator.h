#ifndef BACKSORT_DISORDER_SERIES_GENERATOR_H_
#define BACKSORT_DISORDER_SERIES_GENERATOR_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "disorder/delay_distribution.h"

namespace backsort {

/// Synthesizes an out-of-order arrival stream per Definition 5 of the paper:
/// point i is generated at time i (unit interval), arrives at i + tau_i with
/// tau_i drawn i.i.d. from `delay`, and the stored array is ordered by
/// arrival time (ties broken by generation order, keeping the stream
/// delay-only). The returned vector holds the *generation* timestamps in
/// arrival order — exactly what a TVList contains before sorting.
std::vector<Timestamp> GenerateArrivalOrderedTimestamps(
    size_t n, const DelayDistribution& delay, Rng& rng);

/// Same stream but with values attached. `v(i)` is a smooth periodic signal
/// with noise, keyed by the generation index so ordered/disordered variants
/// of one series carry identical value sets (needed by the downstream
/// forecasting experiment).
template <typename V>
std::vector<TvPair<V>> GenerateArrivalOrderedSeries(
    size_t n, const DelayDistribution& delay, Rng& rng);

/// Computes the value signal used by GenerateArrivalOrderedSeries for
/// generation index i: a two-harmonic periodic wave plus a linear drift.
/// Exposed so tests and the LSTM experiment can derive the ordered ground
/// truth without regenerating delays.
double SignalValueAt(size_t i);

/// Summary of how the delay-only feature manifests in an arrival stream.
/// A point is "delayed" when its array index exceeds its sorted rank, and
/// "ahead" when the index precedes the rank. Under delay-only generation a
/// point can only appear ahead because delayed points jumped over it, so
/// `max_ahead_displacement` stays bounded by the largest delay while
/// `max_delayed_displacement` can be large; a stream with points genuinely
/// arriving early would break that asymmetry.
struct DelayOnlyProfile {
  size_t delayed_points = 0;  ///< index > rank
  size_t ahead_points = 0;    ///< index < rank
  size_t max_delayed_displacement = 0;
  size_t max_ahead_displacement = 0;
};

/// Profiles an arrival stream whose timestamps are a permutation of
/// 0..n-1 (the generator's output).
DelayOnlyProfile ProfileDelayOnly(
    const std::vector<Timestamp>& arrival_ordered);

/// True iff `arrival_ordered` contains each timestamp 0..n-1 exactly once —
/// sanity check that a generator produced a permutation.
bool IsPermutationOfIota(const std::vector<Timestamp>& arrival_ordered);

}  // namespace backsort

#endif  // BACKSORT_DISORDER_SERIES_GENERATOR_H_
