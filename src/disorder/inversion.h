#ifndef BACKSORT_DISORDER_INVERSION_H_
#define BACKSORT_DISORDER_INVERSION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace backsort {

/// Exact number of inversions (Definition 2): pairs (i, j), i < j with
/// t_i > t_j. O(n log n) via merge counting; does not modify the input.
uint64_t CountInversions(const std::vector<Timestamp>& ts);

/// Exact number of interval inversions with interval L (Definition 3):
/// indices i with t_i > t_{i+L}. O(n).
uint64_t CountIntervalInversions(const std::vector<Timestamp>& ts, size_t L);

/// Interval inversion ratio alpha_L = C / (N - L) (Definition 4). Returns 0
/// when L >= N.
double IntervalInversionRatio(const std::vector<Timestamp>& ts, size_t L);

/// Down-sampled empirical IIR (Example 5): inspects only the boundary pairs
/// (t_j, t_{j+L}) for j = 0, L, 2L, ... so one estimate costs O(n/L). This
/// is the estimator Algorithm 1's set-block-size loop uses.
double EmpiricalIntervalInversionRatio(const std::vector<Timestamp>& ts,
                                       size_t L);

/// Empirical IIR over an arbitrary index accessor, used by the sorter to run
/// on TVLists without materializing a timestamp vector. `at(i)` must return
/// the timestamp at arrival index i for i in [0, n).
template <typename TimeAt>
double EmpiricalIirWith(size_t n, size_t L, const TimeAt& at) {
  if (L == 0 || L >= n) return 0.0;
  uint64_t samples = 0;
  uint64_t inverted = 0;
  for (size_t j = 0; j + L < n; j += L) {
    ++samples;
    if (at(j) > at(j + L)) ++inverted;
  }
  if (samples == 0) return 0.0;
  return static_cast<double>(inverted) / static_cast<double>(samples);
}

/// Number of maximal non-decreasing runs (the "Runs" measure of
/// presortedness from the adaptive-sorting literature the paper cites;
/// Patience Sort's cost is driven by it). A sorted array has 1 run.
size_t CountRuns(const std::vector<Timestamp>& ts);

/// Maximum displacement of any element from its sorted position ("Dis").
/// Insertion sort cost relates to Inv; block overlap relates to Dis.
size_t MaxDisplacement(const std::vector<Timestamp>& ts);

/// One point of the interval-inversion-ratio decay curve.
struct TailPoint {
  size_t interval = 0;
  double alpha = 0.0;
};

/// The IIR decay profile at power-of-two intervals — by Proposition 2 an
/// estimate of the delay-difference tail distribution F_bar(L), i.e. the
/// dataset characterization of Section II / Figure 8a.
std::vector<TailPoint> EstimateTailProfile(const std::vector<Timestamp>& ts,
                                           size_t max_interval = 0);

/// Fits an exponential delay rate to a tail profile: for tau ~ E(lambda),
/// E(alpha_L) = exp(-lambda L) / 2 (Example 6), so -d(log alpha)/dL =
/// lambda. Least-squares over log(alpha) on the strictly positive prefix.
/// Returns 0 when fewer than two usable points exist.
double FitExponentialRate(const std::vector<TailPoint>& profile);

/// Expected overlap length of adjacent sorted blocks (Q in the paper),
/// measured empirically: for each block boundary b (multiples of L), the
/// number of points at indices >= b with timestamp smaller than the maximum
/// timestamp among indices < b. Averaged over boundaries. Proposition 4
/// bounds its expectation by E(delta_tau | delta_tau >= 0).
double MeasureMeanOverlap(const std::vector<Timestamp>& ts, size_t L);

}  // namespace backsort

#endif  // BACKSORT_DISORDER_INVERSION_H_
