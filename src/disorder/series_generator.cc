#include "disorder/series_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace backsort {

namespace {

/// Sorts generation indices by (arrival time, generation index). The
/// secondary key models the physical fact that two points sharing an arrival
/// instant are ingested in generation order, which keeps the stream
/// delay-only even under delay ties.
std::vector<uint32_t> ArrivalPermutation(size_t n,
                                         const DelayDistribution& delay,
                                         Rng& rng) {
  std::vector<double> arrival(n);
  for (size_t i = 0; i < n; ++i) {
    arrival[i] = static_cast<double>(i) + delay.Sample(rng);
  }
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&arrival](uint32_t a, uint32_t b) {
                     return arrival[a] < arrival[b];
                   });
  return order;
}

}  // namespace

std::vector<Timestamp> GenerateArrivalOrderedTimestamps(
    size_t n, const DelayDistribution& delay, Rng& rng) {
  const std::vector<uint32_t> order = ArrivalPermutation(n, delay, rng);
  std::vector<Timestamp> out(n);
  for (size_t pos = 0; pos < n; ++pos) {
    out[pos] = static_cast<Timestamp>(order[pos]);
  }
  return out;
}

double SignalValueAt(size_t i) {
  const double x = static_cast<double>(i);
  return 50.0 * std::sin(2.0 * M_PI * x / 200.0) +
         20.0 * std::sin(2.0 * M_PI * x / 31.0) + 0.01 * x;
}

template <typename V>
std::vector<TvPair<V>> GenerateArrivalOrderedSeries(
    size_t n, const DelayDistribution& delay, Rng& rng) {
  const std::vector<uint32_t> order = ArrivalPermutation(n, delay, rng);
  std::vector<TvPair<V>> out(n);
  for (size_t pos = 0; pos < n; ++pos) {
    const uint32_t gen = order[pos];
    out[pos].t = static_cast<Timestamp>(gen);
    out[pos].v = static_cast<V>(SignalValueAt(gen));
  }
  return out;
}

template std::vector<TvPair<int32_t>> GenerateArrivalOrderedSeries<int32_t>(
    size_t, const DelayDistribution&, Rng&);
template std::vector<TvPair<int64_t>> GenerateArrivalOrderedSeries<int64_t>(
    size_t, const DelayDistribution&, Rng&);
template std::vector<TvPair<float>> GenerateArrivalOrderedSeries<float>(
    size_t, const DelayDistribution&, Rng&);
template std::vector<TvPair<double>> GenerateArrivalOrderedSeries<double>(
    size_t, const DelayDistribution&, Rng&);

DelayOnlyProfile ProfileDelayOnly(
    const std::vector<Timestamp>& arrival_ordered) {
  // With distinct generation timestamps 0..n-1, the sorted rank of
  // timestamp t is t itself.
  DelayOnlyProfile profile;
  for (size_t pos = 0; pos < arrival_ordered.size(); ++pos) {
    const Timestamp rank = arrival_ordered[pos];
    if (static_cast<Timestamp>(pos) > rank) {
      ++profile.delayed_points;
      const size_t disp = pos - static_cast<size_t>(rank);
      profile.max_delayed_displacement =
          std::max(profile.max_delayed_displacement, disp);
    } else if (static_cast<Timestamp>(pos) < rank) {
      ++profile.ahead_points;
      const size_t disp = static_cast<size_t>(rank) - pos;
      profile.max_ahead_displacement =
          std::max(profile.max_ahead_displacement, disp);
    }
  }
  return profile;
}

bool IsPermutationOfIota(const std::vector<Timestamp>& arrival_ordered) {
  std::vector<bool> seen(arrival_ordered.size(), false);
  for (Timestamp t : arrival_ordered) {
    if (t < 0 || static_cast<size_t>(t) >= arrival_ordered.size()) return false;
    if (seen[static_cast<size_t>(t)]) return false;
    seen[static_cast<size_t>(t)] = true;
  }
  return true;
}

}  // namespace backsort
