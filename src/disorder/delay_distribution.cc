#include "disorder/delay_distribution.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace backsort {

namespace {

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

AbsNormalDelay::AbsNormalDelay(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {}

double AbsNormalDelay::Sample(Rng& rng) const {
  return std::fabs(mu_ + sigma_ * rng.NextGaussian());
}

std::string AbsNormalDelay::Name() const {
  return "AbsNormal(" + FormatDouble(mu_) + "," + FormatDouble(sigma_) + ")";
}

LogNormalDelay::LogNormalDelay(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {}

double LogNormalDelay::Sample(Rng& rng) const {
  if (sigma_ == 0.0) return std::exp(mu_);
  return std::exp(mu_ + sigma_ * rng.NextGaussian());
}

std::string LogNormalDelay::Name() const {
  return "LogNormal(" + FormatDouble(mu_) + "," + FormatDouble(sigma_) + ")";
}

ExponentialDelay::ExponentialDelay(double lambda) : lambda_(lambda) {}

double ExponentialDelay::Sample(Rng& rng) const {
  return rng.NextExponential(lambda_);
}

std::string ExponentialDelay::Name() const {
  return "Exponential(" + FormatDouble(lambda_) + ")";
}

DiscreteUniformDelay::DiscreteUniformDelay(int64_t lo, int64_t hi)
    : lo_(lo), hi_(hi) {}

double DiscreteUniformDelay::Sample(Rng& rng) const {
  const uint64_t span = static_cast<uint64_t>(hi_ - lo_ + 1);
  return static_cast<double>(lo_ + static_cast<int64_t>(rng.NextBelow(span)));
}

std::string DiscreteUniformDelay::Name() const {
  return "DiscreteUniform(" + std::to_string(lo_) + "," + std::to_string(hi_) +
         ")";
}

ConstantDelay::ConstantDelay(double value) : value_(value) {}

double ConstantDelay::Sample(Rng&) const { return value_; }

std::string ConstantDelay::Name() const {
  return "Constant(" + FormatDouble(value_) + ")";
}

MixtureDelay::MixtureDelay(std::unique_ptr<DelayDistribution> a,
                           std::unique_ptr<DelayDistribution> b,
                           double weight_b, std::string name)
    : a_(std::move(a)),
      b_(std::move(b)),
      weight_b_(weight_b),
      name_(std::move(name)) {}

double MixtureDelay::Sample(Rng& rng) const {
  if (rng.NextDouble() < weight_b_) return b_->Sample(rng);
  return a_->Sample(rng);
}

std::string MixtureDelay::Name() const { return name_; }

BurstyDelay::BurstyDelay(std::unique_ptr<DelayDistribution> base,
                         std::unique_ptr<DelayDistribution> burst,
                         size_t period, size_t burst_len)
    : base_(std::move(base)),
      burst_(std::move(burst)),
      period_(period == 0 ? 1 : period),
      burst_len_(burst_len) {}

double BurstyDelay::Sample(Rng& rng) const {
  const size_t phase = counter_++ % period_;
  double delay = base_->Sample(rng);
  if (phase < burst_len_) {
    delay += burst_->Sample(rng);
  }
  return delay;
}

std::string BurstyDelay::Name() const {
  return "Bursty(" + base_->Name() + "+" + burst_->Name() + "," +
         std::to_string(burst_len_) + "/" + std::to_string(period_) + ")";
}

CappedDelay::CappedDelay(std::unique_ptr<DelayDistribution> inner, double cap)
    : inner_(std::move(inner)), cap_(cap) {}

double CappedDelay::Sample(Rng& rng) const {
  return std::min(inner_->Sample(rng), cap_);
}

std::string CappedDelay::Name() const {
  return "Capped(" + inner_->Name() + "," + FormatDouble(cap_) + ")";
}

}  // namespace backsort
