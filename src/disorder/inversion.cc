#include "disorder/inversion.h"

#include <algorithm>
#include <cmath>

namespace backsort {

namespace {

// Merge-count helper: counts inversions while merge-sorting `buf[lo, hi)`
// using `tmp` as scratch.
uint64_t MergeCount(std::vector<Timestamp>& buf, std::vector<Timestamp>& tmp,
                    size_t lo, size_t hi) {
  if (hi - lo < 2) return 0;
  const size_t mid = lo + (hi - lo) / 2;
  uint64_t count = MergeCount(buf, tmp, lo, mid) + MergeCount(buf, tmp, mid, hi);
  size_t a = lo;
  size_t b = mid;
  size_t w = lo;
  while (a < mid && b < hi) {
    if (buf[a] <= buf[b]) {
      tmp[w++] = buf[a++];
    } else {
      count += mid - a;
      tmp[w++] = buf[b++];
    }
  }
  while (a < mid) tmp[w++] = buf[a++];
  while (b < hi) tmp[w++] = buf[b++];
  std::copy(tmp.begin() + static_cast<ptrdiff_t>(lo),
            tmp.begin() + static_cast<ptrdiff_t>(hi),
            buf.begin() + static_cast<ptrdiff_t>(lo));
  return count;
}

}  // namespace

uint64_t CountInversions(const std::vector<Timestamp>& ts) {
  std::vector<Timestamp> buf = ts;
  std::vector<Timestamp> tmp(buf.size());
  return MergeCount(buf, tmp, 0, buf.size());
}

uint64_t CountIntervalInversions(const std::vector<Timestamp>& ts, size_t L) {
  if (L == 0 || L >= ts.size()) return 0;
  uint64_t count = 0;
  for (size_t i = 0; i + L < ts.size(); ++i) {
    if (ts[i] > ts[i + L]) ++count;
  }
  return count;
}

double IntervalInversionRatio(const std::vector<Timestamp>& ts, size_t L) {
  if (L == 0 || L >= ts.size()) return 0.0;
  const uint64_t c = CountIntervalInversions(ts, L);
  return static_cast<double>(c) / static_cast<double>(ts.size() - L);
}

double EmpiricalIntervalInversionRatio(const std::vector<Timestamp>& ts,
                                       size_t L) {
  return EmpiricalIirWith(ts.size(), L,
                          [&ts](size_t i) { return ts[i]; });
}

size_t CountRuns(const std::vector<Timestamp>& ts) {
  if (ts.empty()) return 0;
  size_t runs = 1;
  for (size_t i = 1; i < ts.size(); ++i) {
    if (ts[i] < ts[i - 1]) ++runs;
  }
  return runs;
}

size_t MaxDisplacement(const std::vector<Timestamp>& ts) {
  if (ts.empty()) return 0;
  // Sorted rank of each element (stable for duplicates), then the max
  // |index - rank|.
  std::vector<size_t> order(ts.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&ts](size_t a, size_t b) {
    return ts[a] < ts[b];
  });
  size_t max_disp = 0;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const size_t idx = order[rank];
    const size_t disp = idx > rank ? idx - rank : rank - idx;
    max_disp = std::max(max_disp, disp);
  }
  return max_disp;
}

std::vector<TailPoint> EstimateTailProfile(const std::vector<Timestamp>& ts,
                                           size_t max_interval) {
  std::vector<TailPoint> profile;
  if (ts.size() < 2) return profile;
  const size_t cap = max_interval == 0 ? ts.size() - 1
                                       : std::min(max_interval, ts.size() - 1);
  for (size_t L = 1; L <= cap; L *= 2) {
    profile.push_back({L, IntervalInversionRatio(ts, L)});
  }
  return profile;
}

double FitExponentialRate(const std::vector<TailPoint>& profile) {
  // Least squares of log(alpha_L) = log(1/2) - lambda * L over points with
  // alpha > 0.
  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_xy = 0;
  size_t n = 0;
  for (const TailPoint& p : profile) {
    if (p.alpha <= 0.0) continue;
    const double x = static_cast<double>(p.interval);
    const double y = std::log(p.alpha);
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
    ++n;
  }
  if (n < 2) return 0.0;
  const double denom = static_cast<double>(n) * sum_xx - sum_x * sum_x;
  if (denom == 0.0) return 0.0;
  const double slope =
      (static_cast<double>(n) * sum_xy - sum_x * sum_y) / denom;
  return -slope;
}

double MeasureMeanOverlap(const std::vector<Timestamp>& ts, size_t L) {
  if (L == 0 || L >= ts.size()) return 0.0;
  // For boundary b, overlap = #{ i >= b : t_i < max(t_0..t_{b-1}) }.
  // Computed in one backward sweep per boundary would be O(n^2 / L); instead
  // precompute prefix maxima and, for each boundary, count suffix points
  // below that maximum using a sorted suffix structure. For the measurement
  // sizes used in tests/benches an O(n log n) approach suffices: sort the
  // suffix indices by timestamp once and walk boundaries backward.
  const size_t n = ts.size();
  std::vector<Timestamp> prefix_max(n);
  Timestamp running = ts[0];
  for (size_t i = 0; i < n; ++i) {
    running = std::max(running, ts[i]);
    prefix_max[i] = running;
  }
  // Sort (timestamp, index) pairs once; for each boundary count pairs with
  // index >= b and timestamp < prefix_max[b-1]. Use offline processing:
  // iterate boundaries in decreasing b, maintaining a Fenwick tree over
  // timestamp ranks of points with index >= b.
  std::vector<std::pair<Timestamp, size_t>> by_time(n);
  for (size_t i = 0; i < n; ++i) by_time[i] = {ts[i], i};
  std::sort(by_time.begin(), by_time.end());
  // rank[i] = position of point i in sorted-by-time order.
  std::vector<size_t> rank(n);
  for (size_t r = 0; r < n; ++r) rank[by_time[r].second] = r;

  std::vector<uint64_t> fenwick(n + 1, 0);
  auto fenwick_add = [&fenwick](size_t pos) {
    for (size_t i = pos + 1; i < fenwick.size(); i += i & (~i + 1)) {
      ++fenwick[i];
    }
  };
  auto fenwick_count_less = [&fenwick, &by_time](Timestamp limit) {
    // Count inserted points with timestamp < limit: find the number of
    // sorted positions whose timestamp < limit, then prefix-sum the tree.
    const size_t upper = static_cast<size_t>(
        std::lower_bound(by_time.begin(), by_time.end(),
                         std::make_pair(limit, size_t{0})) -
        by_time.begin());
    uint64_t total = 0;
    for (size_t i = upper; i > 0; i -= i & (~i + 1)) total += fenwick[i];
    return total;
  };

  uint64_t overlap_sum = 0;
  size_t boundaries = 0;
  size_t next_to_insert = n;  // points with index >= next_to_insert inserted
  // Walk boundaries from the last multiple of L down to L.
  for (size_t b = (n - 1) / L * L; b >= L; b -= L) {
    while (next_to_insert > b) {
      --next_to_insert;
      fenwick_add(rank[next_to_insert]);
    }
    overlap_sum += fenwick_count_less(prefix_max[b - 1]);
    ++boundaries;
    if (b < L) break;
  }
  if (boundaries == 0) return 0.0;
  return static_cast<double>(overlap_sum) / static_cast<double>(boundaries);
}

}  // namespace backsort
