#ifndef BACKSORT_SORT_SORTABLE_H_
#define BACKSORT_SORT_SORTABLE_H_

#include <concepts>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/counters.h"
#include "common/types.h"

namespace backsort {

/// All sort algorithms in this repository are templated over a *sortable
/// sequence* access object rather than raw iterators, mirroring how IoTDB's
/// sorting component is written against the TVList interface instead of a
/// flat array. A sortable sequence `S` provides:
///
///   using Element = ...;                 // copyable (timestamp, value) unit
///   size_t size() const;
///   Timestamp TimeAt(size_t i) const;    // sort key at arrival index i
///   Element Get(size_t i) const;         // read a TV pair
///   void Set(size_t i, const Element&);  // write a TV pair (counts 1 move)
///   void Swap(size_t i, size_t j);       // counts 1 swap = 3 moves
///   static Timestamp ElementTime(const Element&);
///   OpCounters& counters();
///
/// Instrumentation contract: Set/Swap update the move counters; algorithms
/// increment `counters().comparisons` at every key comparison; scratch
/// buffer traffic is reported through NoteScratch()/Set/Get on the sequence
/// that owns the buffer.
template <typename S>
concept SortableSequence = requires(S s, const S cs, size_t i,
                                    typename S::Element e) {
  { cs.size() } -> std::convertible_to<size_t>;
  { cs.TimeAt(i) } -> std::convertible_to<Timestamp>;
  { cs.Get(i) } -> std::convertible_to<typename S::Element>;
  s.Set(i, e);
  s.Swap(i, i);
  { S::ElementTime(e) } -> std::convertible_to<Timestamp>;
  { s.counters() } -> std::convertible_to<OpCounters&>;
};

/// Sortable adapter over a contiguous std::vector<TvPair<V>> buffer, the
/// plain-array setting of the paper's algorithm-level experiments.
template <typename V>
class VectorSortable {
 public:
  using Element = TvPair<V>;

  explicit VectorSortable(std::vector<Element>& data) : data_(&data) {}

  size_t size() const { return data_->size(); }
  Timestamp TimeAt(size_t i) const { return (*data_)[i].t; }
  Element Get(size_t i) const { return (*data_)[i]; }

  void Set(size_t i, const Element& e) {
    (*data_)[i] = e;
    ++counters_.moves;
  }

  void Swap(size_t i, size_t j) {
    std::swap((*data_)[i], (*data_)[j]);
    ++counters_.swaps;
    counters_.moves += 3;
  }

  static Timestamp ElementTime(const Element& e) { return e.t; }

  OpCounters& counters() { return counters_; }
  const OpCounters& counters() const { return counters_; }

  /// Records that `n` scratch elements were alive simultaneously.
  void NoteScratch(size_t n) {
    if (n > counters_.peak_scratch) counters_.peak_scratch = n;
  }

 private:
  std::vector<Element>* data_;
  OpCounters counters_;
};

namespace sort_internal {

/// Reports scratch usage if the sequence supports NoteScratch; no-op
/// otherwise. Lets algorithms stay generic over minimal adapters.
template <typename Seq>
void NoteScratchIfSupported(Seq& seq, size_t n) {
  if constexpr (requires(Seq& s) { s.NoteScratch(n); }) {
    seq.NoteScratch(n);
  }
}

}  // namespace sort_internal

/// True iff seq[lo, hi) is non-decreasing in timestamp.
template <typename Seq>
bool IsSortedRange(const Seq& seq, size_t lo, size_t hi) {
  for (size_t i = lo + 1; i < hi; ++i) {
    if (seq.TimeAt(i - 1) > seq.TimeAt(i)) return false;
  }
  return true;
}

template <typename Seq>
bool IsSorted(const Seq& seq) {
  return IsSortedRange(seq, 0, seq.size());
}

}  // namespace backsort

#endif  // BACKSORT_SORT_SORTABLE_H_
