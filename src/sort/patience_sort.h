#ifndef BACKSORT_SORT_PATIENCE_SORT_H_
#define BACKSORT_SORT_PATIENCE_SORT_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sort/sortable.h"

namespace backsort {

/// Patience Sort after Chandramouli & Goldstein (SIGMOD'14), the
/// state-of-the-art baseline for nearly sorted data the paper compares
/// against. Phase 1 deals the input onto sorted runs: each element is
/// appended to a run whose tail is <= it (checking the most recently used
/// run first — for nearly sorted data almost every element lands there —
/// then binary-searching the runs, whose tails are kept in increasing
/// order). Phase 2 merges the runs pairwise, ping-ponging between two
/// buffers, and writes the result back.
///
/// The paper observes the weakness this reproduction also exhibits: run
/// construction copies every TV pair out of the sequence, which is costly
/// when moves are expensive (IoTDB TV pairs), and heavy-tailed delay
/// distributions (LogNormal) create many runs.
template <typename Seq>
void PatienceSort(Seq& seq) {
  using Element = typename Seq::Element;
  const size_t n = seq.size();
  if (n < 2) return;

  // Phase 1: deal onto runs. Runs are ordered by tail timestamp: run 0 has
  // the smallest tail. A new element x goes to the run with the largest
  // tail <= x; if none exists a new run is created at the front.
  std::vector<std::vector<Element>> runs;
  size_t last_used = 0;
  size_t dealt = 0;
  for (size_t i = 0; i < n; ++i) {
    const Element x = seq.Get(i);
    ++seq.counters().moves;
    ++dealt;
    const Timestamp key = Seq::ElementTime(x);
    if (!runs.empty()) {
      // Fast path: most recently used run.
      ++seq.counters().comparisons;
      if (Seq::ElementTime(runs[last_used].back()) <= key) {
        // Could there be a later run (larger tail) that also fits? Prefer
        // the largest tail <= key to keep runs long; check the last run.
        size_t target = last_used;
        if (last_used + 1 < runs.size()) {
          // Binary search in (last_used, end) for largest tail <= key.
          size_t lo = last_used + 1;
          size_t hi = runs.size();
          while (lo < hi) {
            const size_t mid = lo + (hi - lo) / 2;
            ++seq.counters().comparisons;
            if (Seq::ElementTime(runs[mid].back()) <= key) {
              lo = mid + 1;
            } else {
              hi = mid;
            }
          }
          if (lo > last_used + 1) target = lo - 1;
        }
        runs[target].push_back(x);
        last_used = target;
        continue;
      }
    }
    // General path: binary search all runs for largest tail <= key.
    size_t lo = 0;
    size_t hi = runs.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      ++seq.counters().comparisons;
      if (Seq::ElementTime(runs[mid].back()) <= key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == 0) {
      // No run can take x: start a new run with the smallest tail.
      runs.insert(runs.begin(), std::vector<Element>{x});
      last_used = 0;
    } else {
      runs[lo - 1].push_back(x);
      last_used = lo - 1;
    }
  }
  sort_internal::NoteScratchIfSupported(seq, dealt);

  // Phase 2: pairwise ping-pong merge until one run remains.
  while (runs.size() > 1) {
    std::vector<std::vector<Element>> next;
    next.reserve((runs.size() + 1) / 2);
    for (size_t i = 0; i + 1 < runs.size(); i += 2) {
      std::vector<Element> merged;
      merged.reserve(runs[i].size() + runs[i + 1].size());
      size_t a = 0;
      size_t b = 0;
      const auto& ra = runs[i];
      const auto& rb = runs[i + 1];
      while (a < ra.size() && b < rb.size()) {
        ++seq.counters().comparisons;
        if (Seq::ElementTime(ra[a]) <= Seq::ElementTime(rb[b])) {
          merged.push_back(ra[a++]);
        } else {
          merged.push_back(rb[b++]);
        }
        ++seq.counters().moves;
      }
      while (a < ra.size()) {
        merged.push_back(ra[a++]);
        ++seq.counters().moves;
      }
      while (b < rb.size()) {
        merged.push_back(rb[b++]);
        ++seq.counters().moves;
      }
      next.push_back(std::move(merged));
    }
    if (runs.size() % 2 == 1) {
      next.push_back(std::move(runs.back()));
    }
    runs = std::move(next);
  }

  // Write back.
  const std::vector<Element>& result = runs.front();
  for (size_t i = 0; i < n; ++i) {
    seq.Set(i, result[i]);
  }
}

}  // namespace backsort

#endif  // BACKSORT_SORT_PATIENCE_SORT_H_
