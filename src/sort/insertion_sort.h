#ifndef BACKSORT_SORT_INSERTION_SORT_H_
#define BACKSORT_SORT_INSERTION_SORT_H_

#include <cstddef>

#include "sort/sortable.h"

namespace backsort {

/// Straight insertion sort of seq[lo, hi). Adaptive w.r.t. Inv: runs in
/// O(n + Inv). This is the L = 1 degenerate case of Backward-Sort
/// (Proposition 5) and the small-range building block of the hybrids.
template <typename Seq>
void InsertionSortRange(Seq& seq, size_t lo, size_t hi) {
  using Element = typename Seq::Element;
  for (size_t i = lo + 1; i < hi; ++i) {
    ++seq.counters().comparisons;
    if (seq.TimeAt(i - 1) <= seq.TimeAt(i)) continue;
    const Element pending = seq.Get(i);
    const Timestamp key = Seq::ElementTime(pending);
    size_t j = i;
    while (j > lo) {
      if (j - 1 > lo) ++seq.counters().comparisons;
      if (seq.TimeAt(j - 1) <= key) break;
      seq.Set(j, seq.Get(j - 1));
      --j;
    }
    seq.Set(j, pending);
  }
}

template <typename Seq>
void InsertionSort(Seq& seq) {
  InsertionSortRange(seq, 0, seq.size());
}

/// Binary insertion sort of seq[lo, hi), assuming seq[lo, start) is already
/// sorted. Used by Timsort to extend short runs: O(n log n) comparisons but
/// still O(Inv) moves.
template <typename Seq>
void BinaryInsertionSortRange(Seq& seq, size_t lo, size_t hi, size_t start) {
  using Element = typename Seq::Element;
  if (start <= lo) start = lo + 1;
  for (size_t i = start; i < hi; ++i) {
    const Element pending = seq.Get(i);
    const Timestamp key = Seq::ElementTime(pending);
    // Find insertion point in [lo, i) via binary search (upper bound to
    // keep equal keys stable).
    size_t left = lo;
    size_t right = i;
    while (left < right) {
      const size_t mid = left + (right - left) / 2;
      ++seq.counters().comparisons;
      if (key < seq.TimeAt(mid)) {
        right = mid;
      } else {
        left = mid + 1;
      }
    }
    for (size_t j = i; j > left; --j) {
      seq.Set(j, seq.Get(j - 1));
    }
    if (left != i) seq.Set(left, pending);
  }
}

}  // namespace backsort

#endif  // BACKSORT_SORT_INSERTION_SORT_H_
