#ifndef BACKSORT_SORT_CK_SORT_H_
#define BACKSORT_SORT_CK_SORT_H_

#include <cstddef>
#include <vector>

#include "sort/quicksort.h"
#include "sort/sortable.h"

namespace backsort {

/// CKSort after Cook & Kim (CACM 1980), "Best sorting algorithm for nearly
/// sorted lists": a hybrid of Quicksort, Insertion Sort and Merge Sort.
/// One scan extracts the out-of-order elements pairwise into a side array,
/// leaving a sorted remainder in place; the (small) side array is sorted —
/// insertion sort when tiny, quicksort otherwise — and merged back. Needs
/// O(n) extra space in the worst case and re-moves the sorted remainder
/// during the merge, the redundant moves the paper calls out.
template <typename Seq>
void CkSort(Seq& seq) {
  using Element = typename Seq::Element;
  const size_t n = seq.size();
  if (n < 2) return;

  // Phase 1: single left-to-right scan. `kept` is the in-place sorted
  // prefix (compacted toward the front); whenever the next element is
  // smaller than the kept tail, both the tail and the offender move to the
  // extracted array (Cook-Kim removes unordered *pairs*).
  std::vector<Element> extracted;
  size_t kept = 0;  // seq[0, kept) is the sorted remainder
  for (size_t i = 0; i < n; ++i) {
    if (kept > 0) ++seq.counters().comparisons;
    if (kept == 0 || seq.TimeAt(kept - 1) <= seq.TimeAt(i)) {
      if (kept != i) {
        seq.Set(kept, seq.Get(i));
      }
      ++kept;
    } else {
      extracted.push_back(seq.Get(kept - 1));
      extracted.push_back(seq.Get(i));
      seq.counters().moves += 2;
      --kept;
    }
  }
  sort_internal::NoteScratchIfSupported(seq, extracted.size());
  if (extracted.empty()) return;

  // Phase 2: sort the extracted array (quicksort; Cook-Kim use straight
  // insertion below a small threshold).
  struct ScratchSeq {
    using Element = typename Seq::Element;
    std::vector<Element>* data;
    OpCounters* c;
    size_t size() const { return data->size(); }
    Timestamp TimeAt(size_t i) const {
      return Seq::ElementTime((*data)[i]);
    }
    Element Get(size_t i) const { return (*data)[i]; }
    void Set(size_t i, const Element& e) {
      (*data)[i] = e;
      ++c->moves;
    }
    void Swap(size_t i, size_t j) {
      std::swap((*data)[i], (*data)[j]);
      ++c->swaps;
      c->moves += 3;
    }
    static Timestamp ElementTime(const Element& e) {
      return Seq::ElementTime(e);
    }
    OpCounters& counters() { return *c; }
  };
  ScratchSeq scratch_seq{&extracted, &seq.counters()};
  if (extracted.size() <= 16) {
    InsertionSort(scratch_seq);
  } else {
    QuickSort(scratch_seq);
  }

  // Phase 3: merge remainder seq[0, kept) with `extracted` from the right
  // end so the merge is in place in seq[0, n).
  ptrdiff_t a = static_cast<ptrdiff_t>(kept) - 1;
  ptrdiff_t b = static_cast<ptrdiff_t>(extracted.size()) - 1;
  ptrdiff_t w = static_cast<ptrdiff_t>(n) - 1;
  while (a >= 0 && b >= 0) {
    ++seq.counters().comparisons;
    if (seq.TimeAt(static_cast<size_t>(a)) >
        Seq::ElementTime(extracted[static_cast<size_t>(b)])) {
      seq.Set(static_cast<size_t>(w--), seq.Get(static_cast<size_t>(a--)));
    } else {
      seq.Set(static_cast<size_t>(w--), extracted[static_cast<size_t>(b--)]);
    }
  }
  while (b >= 0) {
    seq.Set(static_cast<size_t>(w--), extracted[static_cast<size_t>(b--)]);
  }
  // Remaining remainder elements are already in place.
}

}  // namespace backsort

#endif  // BACKSORT_SORT_CK_SORT_H_
