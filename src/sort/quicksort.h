#ifndef BACKSORT_SORT_QUICKSORT_H_
#define BACKSORT_SORT_QUICKSORT_H_

#include <cstddef>

#include "sort/insertion_sort.h"
#include "sort/sortable.h"

namespace backsort {

namespace sort_internal {

/// Sift-down for the heapsort fallback over seq[lo, lo + len).
template <typename Seq>
void SiftDown(Seq& seq, size_t lo, size_t root, size_t len) {
  for (;;) {
    size_t child = 2 * root + 1;
    if (child >= len) return;
    if (child + 1 < len) {
      ++seq.counters().comparisons;
      if (seq.TimeAt(lo + child) < seq.TimeAt(lo + child + 1)) ++child;
    }
    ++seq.counters().comparisons;
    if (seq.TimeAt(lo + root) >= seq.TimeAt(lo + child)) return;
    seq.Swap(lo + root, lo + child);
    root = child;
  }
}

/// Heapsort over seq[lo, hi); used as the depth-limit escape hatch so the
/// quicksort baseline cannot blow the stack on adversarial inputs while
/// keeping the paper's middle-pivot behavior on ordinary ones.
template <typename Seq>
void HeapSortRange(Seq& seq, size_t lo, size_t hi) {
  const size_t len = hi - lo;
  if (len < 2) return;
  for (size_t i = len / 2; i-- > 0;) {
    SiftDown(seq, lo, i, len);
  }
  for (size_t end = len - 1; end > 0; --end) {
    seq.Swap(lo, lo + end);
    SiftDown(seq, lo, 0, end);
  }
}

template <typename Seq>
void QuickSortImpl(Seq& seq, size_t lo, size_t hi, int depth_budget) {
  constexpr size_t kInsertionCutoff = 24;
  while (hi - lo > kInsertionCutoff) {
    if (depth_budget-- == 0) {
      HeapSortRange(seq, lo, hi);
      return;
    }
    // The paper implements Quicksort with the pivot "always chosen as the
    // middle element of arrays due to time series": nearly sorted inputs
    // then split evenly instead of degenerating. The chosen pivot is moved
    // to `lo` so the classic Hoare partition guarantees the final crossing
    // index j lands in [lo, hi-2], making both recursive halves strictly
    // smaller.
    seq.Swap(lo, lo + (hi - lo) / 2);
    const Timestamp pivot = seq.TimeAt(lo);
    ptrdiff_t i = static_cast<ptrdiff_t>(lo) - 1;
    ptrdiff_t j = static_cast<ptrdiff_t>(hi);
    for (;;) {
      do {
        ++i;
        ++seq.counters().comparisons;
      } while (seq.TimeAt(static_cast<size_t>(i)) < pivot);
      do {
        --j;
        ++seq.counters().comparisons;
      } while (seq.TimeAt(static_cast<size_t>(j)) > pivot);
      if (i >= j) break;
      seq.Swap(static_cast<size_t>(i), static_cast<size_t>(j));
    }
    const size_t split = static_cast<size_t>(j) + 1;
    // Recurse into the smaller half, iterate on the larger (bounded stack).
    if (split - lo < hi - split) {
      QuickSortImpl(seq, lo, split, depth_budget);
      lo = split;
    } else {
      QuickSortImpl(seq, split, hi, depth_budget);
      hi = split;
    }
  }
  InsertionSortRange(seq, lo, hi);
}

}  // namespace sort_internal

/// Quicksort with middle-element pivot — the paper's Quicksort baseline and
/// the block-local sorter of Backward-Sort (Algorithm 1 line 11).
template <typename Seq>
void QuickSortRange(Seq& seq, size_t lo, size_t hi) {
  if (hi - lo < 2) return;
  // Depth budget ~ 2 log2(n) before falling back to heapsort.
  int budget = 2;
  for (size_t n = hi - lo; n > 1; n >>= 1) budget += 2;
  sort_internal::QuickSortImpl(seq, lo, hi, budget);
}

template <typename Seq>
void QuickSort(Seq& seq) {
  QuickSortRange(seq, 0, seq.size());
}

}  // namespace backsort

#endif  // BACKSORT_SORT_QUICKSORT_H_
