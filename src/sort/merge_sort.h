#ifndef BACKSORT_SORT_MERGE_SORT_H_
#define BACKSORT_SORT_MERGE_SORT_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sort/sortable.h"

namespace backsort {

namespace sort_internal {

/// Merges the two sorted ranges seq[lo, mid) and seq[mid, hi) using
/// `scratch` (resized as needed). Stable. This is also the "straight merge"
/// that Example 3 compares Backward Merge against: the left run is copied
/// out unconditionally, so already-placed prefixes are moved again.
template <typename Seq>
void StraightMergeRanges(Seq& seq, size_t lo, size_t mid, size_t hi,
                         std::vector<typename Seq::Element>& scratch) {
  if (lo >= mid || mid >= hi) return;
  ++seq.counters().comparisons;
  if (seq.TimeAt(mid - 1) <= seq.TimeAt(mid)) return;  // already in order
  scratch.clear();
  scratch.reserve(mid - lo);
  for (size_t i = lo; i < mid; ++i) {
    scratch.push_back(seq.Get(i));
    ++seq.counters().moves;
  }
  NoteScratchIfSupported(seq, scratch.size());
  size_t a = 0;
  size_t b = mid;
  size_t w = lo;
  while (a < scratch.size() && b < hi) {
    ++seq.counters().comparisons;
    if (Seq::ElementTime(scratch[a]) <= seq.TimeAt(b)) {
      seq.Set(w++, scratch[a++]);
    } else {
      seq.Set(w++, seq.Get(b++));
    }
  }
  while (a < scratch.size()) {
    seq.Set(w++, scratch[a++]);
  }
  // Remaining right-run elements are already in place.
}

}  // namespace sort_internal

/// Bottom-up stable merge sort with O(n) scratch; the textbook non-adaptive
/// reference point among the baselines.
template <typename Seq>
void MergeSortRange(Seq& seq, size_t lo, size_t hi) {
  const size_t n = hi - lo;
  if (n < 2) return;
  std::vector<typename Seq::Element> scratch;
  for (size_t width = 1; width < n; width *= 2) {
    for (size_t left = lo; left + width < hi; left += 2 * width) {
      const size_t mid = left + width;
      const size_t right = std::min(left + 2 * width, hi);
      sort_internal::StraightMergeRanges(seq, left, mid, right, scratch);
    }
  }
}

template <typename Seq>
void MergeSort(Seq& seq) {
  MergeSortRange(seq, 0, seq.size());
}

}  // namespace backsort

#endif  // BACKSORT_SORT_MERGE_SORT_H_
