#ifndef BACKSORT_SORT_Y_SORT_H_
#define BACKSORT_SORT_Y_SORT_H_

#include <cstddef>

#include "sort/insertion_sort.h"
#include "sort/quicksort.h"
#include "sort/sortable.h"

namespace backsort {

namespace sort_internal {

template <typename Seq>
void YSortImpl(Seq& seq, size_t lo, size_t hi, int depth_budget) {
  constexpr size_t kInsertionCutoff = 24;
  while (hi - lo > kInsertionCutoff) {
    if (depth_budget-- == 0) {
      HeapSortRange(seq, lo, hi);
      return;
    }
    // Sortedness fast path: on nearly sorted sublists the scan is usually
    // the only work, which is what makes YSort strong at low disorder and
    // wasteful at high disorder (paper Fig. 11).
    {
      size_t i = lo + 1;
      while (i < hi) {
        ++seq.counters().comparisons;
        if (seq.TimeAt(i - 1) > seq.TimeAt(i)) break;
        ++i;
      }
      if (i == hi) return;
    }
    // Locate min and max and pin them to the sublist ends, so each
    // partitioning step excludes the boundaries and no subsequent partition
    // ever has to handle the extrema again.
    size_t min_idx = lo;
    size_t max_idx = lo;
    for (size_t i = lo + 1; i < hi; ++i) {
      seq.counters().comparisons += 2;
      if (seq.TimeAt(i) < seq.TimeAt(min_idx)) min_idx = i;
      if (seq.TimeAt(i) >= seq.TimeAt(max_idx)) max_idx = i;
    }
    if (min_idx != lo) {
      seq.Swap(lo, min_idx);
      if (max_idx == lo) max_idx = min_idx;
    }
    if (max_idx != hi - 1) {
      seq.Swap(hi - 1, max_idx);
    }
    // Partition the interior (lo+1, hi-1) around its middle element.
    const size_t ilo = lo + 1;
    const size_t ihi = hi - 1;
    if (ihi - ilo < 2) return;
    seq.Swap(ilo, ilo + (ihi - ilo) / 2);
    const Timestamp pivot = seq.TimeAt(ilo);
    ptrdiff_t i = static_cast<ptrdiff_t>(ilo) - 1;
    ptrdiff_t j = static_cast<ptrdiff_t>(ihi);
    for (;;) {
      do {
        ++i;
        ++seq.counters().comparisons;
      } while (seq.TimeAt(static_cast<size_t>(i)) < pivot);
      do {
        --j;
        ++seq.counters().comparisons;
      } while (seq.TimeAt(static_cast<size_t>(j)) > pivot);
      if (i >= j) break;
      seq.Swap(static_cast<size_t>(i), static_cast<size_t>(j));
    }
    const size_t split = static_cast<size_t>(j) + 1;
    if (split - ilo < ihi - split) {
      YSortImpl(seq, ilo, split, depth_budget);
      lo = split;
      hi = ihi;
    } else {
      YSortImpl(seq, split, ihi, depth_budget);
      lo = ilo;
      hi = split;
    }
  }
  InsertionSortRange(seq, lo, hi);
}

}  // namespace sort_internal

/// YSort, reconstructed from Wainwright (CACM 1985)'s class of
/// quicksort-derived algorithms: every partitioning step first pins the
/// sublist's minimum and maximum to its ends (so partitions act on the
/// interior only and need fewer steps) and returns immediately when the
/// sublist is detected to be sorted. This matches the behavioral profile
/// the paper reports: strong when the out-of-order degree is small
/// (samsung-d5), ineffective when it is large (citibike-201808).
template <typename Seq>
void YSort(Seq& seq) {
  const size_t n = seq.size();
  if (n < 2) return;
  int budget = 2;
  for (size_t m = n; m > 1; m >>= 1) budget += 2;
  sort_internal::YSortImpl(seq, 0, n, budget);
}

}  // namespace backsort

#endif  // BACKSORT_SORT_Y_SORT_H_
