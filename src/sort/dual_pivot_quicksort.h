#ifndef BACKSORT_SORT_DUAL_PIVOT_QUICKSORT_H_
#define BACKSORT_SORT_DUAL_PIVOT_QUICKSORT_H_

#include <cstddef>

#include "sort/insertion_sort.h"
#include "sort/quicksort.h"
#include "sort/sortable.h"

namespace backsort {

namespace sort_internal {

template <typename Seq>
void DualPivotImpl(Seq& seq, size_t lo, size_t hi, int depth_budget) {
  constexpr size_t kInsertionCutoff = 32;
  while (hi - lo > kInsertionCutoff) {
    if (depth_budget-- == 0) {
      HeapSortRange(seq, lo, hi);
      return;
    }
    const size_t n = hi - lo;
    // Pivots from the tertiles (Java samples five elements; tertiles give
    // the same balanced behavior on time-series-like inputs).
    seq.Swap(lo, lo + n / 3);
    seq.Swap(hi - 1, lo + 2 * n / 3);
    ++seq.counters().comparisons;
    if (seq.TimeAt(lo) > seq.TimeAt(hi - 1)) {
      seq.Swap(lo, hi - 1);
    }
    const Timestamp p = seq.TimeAt(lo);      // left pivot
    const Timestamp q = seq.TimeAt(hi - 1);  // right pivot

    // Yaroslavskiy three-way partition: [lo+1, lt) < p, [lt, i) in [p, q],
    // (gt, hi-1) > q.
    size_t lt = lo + 1;
    size_t gt = hi - 2;
    size_t i = lo + 1;
    while (i <= gt) {
      ++seq.counters().comparisons;
      if (seq.TimeAt(i) < p) {
        if (i != lt) seq.Swap(i, lt);
        ++lt;
        ++i;
      } else {
        ++seq.counters().comparisons;
        if (seq.TimeAt(i) > q) {
          // Skip the suffix already known to be > q before swapping, so a
          // sorted right segment costs comparisons, not swaps.
          while (i < gt) {
            ++seq.counters().comparisons;
            if (seq.TimeAt(gt) <= q) break;
            --gt;
          }
          if (i >= gt) {
            // Everything from i rightwards is > q: the mid/right boundary
            // sits just before i.
            gt = i - 1;
            break;
          }
          seq.Swap(i, gt);
          --gt;
        } else {
          ++i;
        }
      }
    }
    // Place the pivots.
    --lt;
    ++gt;
    seq.Swap(lo, lt);
    seq.Swap(hi - 1, gt);

    // Recurse on the two smaller segments, iterate on the largest.
    const size_t len1 = lt - lo;             // [lo, lt)
    const size_t len2 = gt - lt - 1;         // (lt, gt)
    const size_t len3 = hi - gt - 1;         // (gt, hi)
    if (len1 >= len2 && len1 >= len3) {
      DualPivotImpl(seq, lt + 1, gt, depth_budget);
      DualPivotImpl(seq, gt + 1, hi, depth_budget);
      hi = lt;
    } else if (len2 >= len1 && len2 >= len3) {
      DualPivotImpl(seq, lo, lt, depth_budget);
      DualPivotImpl(seq, gt + 1, hi, depth_budget);
      lo = lt + 1;
      hi = gt;
    } else {
      DualPivotImpl(seq, lo, lt, depth_budget);
      DualPivotImpl(seq, lt + 1, gt, depth_budget);
      lo = gt + 1;
    }
  }
  InsertionSortRange(seq, lo, hi);
}

}  // namespace sort_internal

/// Dual-pivot quicksort (Yaroslavskiy), the algorithm behind
/// java.util.Arrays.sort for primitives — relevant because IoTDB is a Java
/// system and primitive-array sorting there uses exactly this family.
/// Unstable, in-place, O(n log n) average.
template <typename Seq>
void DualPivotQuickSort(Seq& seq) {
  const size_t n = seq.size();
  if (n < 2) return;
  int budget = 2;
  for (size_t m = n; m > 1; m >>= 1) budget += 2;
  sort_internal::DualPivotImpl(seq, 0, n, budget);
}

}  // namespace backsort

#endif  // BACKSORT_SORT_DUAL_PIVOT_QUICKSORT_H_
