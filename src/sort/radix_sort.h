#ifndef BACKSORT_SORT_RADIX_SORT_H_
#define BACKSORT_SORT_RADIX_SORT_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sort/sortable.h"

namespace backsort {

/// LSD radix sort on the 64-bit timestamp key — the non-comparison
/// reference point: O(n) time and O(n) space regardless of disorder, so it
/// bounds what any comparison sorter can gain from adaptivity. Stable.
/// Skips passes whose byte is constant across the array (for nearly-dense
/// nanosecond timestamps most high bytes are), which makes it surprisingly
/// competitive.
template <typename Seq>
void RadixSort(Seq& seq) {
  using Element = typename Seq::Element;
  const size_t n = seq.size();
  if (n < 2) return;

  // Materialize once; radix passes ping-pong between two buffers.
  std::vector<Element> a;
  a.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    a.push_back(seq.Get(i));
    ++seq.counters().moves;
  }
  sort_internal::NoteScratchIfSupported(seq, 2 * n);
  std::vector<Element> b(n);

  // Biased key: flipping the sign bit makes signed order = unsigned order.
  auto key = [](const Element& e) {
    return static_cast<uint64_t>(Seq::ElementTime(e)) ^ (1ULL << 63);
  };

  Element* src = a.data();
  Element* dst = b.data();
  for (int pass = 0; pass < 8; ++pass) {
    const int shift = pass * 8;
    std::array<size_t, 256> count{};
    for (size_t i = 0; i < n; ++i) {
      ++count[(key(src[i]) >> shift) & 0xff];
    }
    // Constant byte: nothing to do this pass.
    bool constant = false;
    for (size_t c = 0; c < 256; ++c) {
      if (count[c] == n) {
        constant = true;
        break;
      }
    }
    if (constant) continue;
    size_t offset = 0;
    std::array<size_t, 256> start{};
    for (size_t c = 0; c < 256; ++c) {
      start[c] = offset;
      offset += count[c];
    }
    for (size_t i = 0; i < n; ++i) {
      dst[start[(key(src[i]) >> shift) & 0xff]++] = src[i];
      ++seq.counters().moves;
    }
    std::swap(src, dst);
  }

  for (size_t i = 0; i < n; ++i) {
    seq.Set(i, src[i]);
  }
}

}  // namespace backsort

#endif  // BACKSORT_SORT_RADIX_SORT_H_
