#ifndef BACKSORT_SORT_STD_SORT_H_
#define BACKSORT_SORT_STD_SORT_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sort/sortable.h"

namespace backsort {

/// std::sort (introsort) reference point. Generic sortable sequences are
/// not random-access iterators, so the data is materialized into a buffer,
/// sorted there, and written back — the same copy-out/copy-in cost any
/// buffer-based sorter pays on a TVList. Stable ordering of equal
/// timestamps is not guaranteed (std::sort is unstable).
template <typename Seq>
void StdSort(Seq& seq) {
  using Element = typename Seq::Element;
  const size_t n = seq.size();
  if (n < 2) return;
  std::vector<Element> buf;
  buf.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    buf.push_back(seq.Get(i));
    ++seq.counters().moves;
  }
  sort_internal::NoteScratchIfSupported(seq, buf.size());
  auto& counters = seq.counters();
  std::sort(buf.begin(), buf.end(),
            [&counters](const Element& a, const Element& b) {
              ++counters.comparisons;
              return Seq::ElementTime(a) < Seq::ElementTime(b);
            });
  for (size_t i = 0; i < n; ++i) {
    seq.Set(i, buf[i]);
  }
}

}  // namespace backsort

#endif  // BACKSORT_SORT_STD_SORT_H_
