#ifndef BACKSORT_SORT_SMOOTHSORT_H_
#define BACKSORT_SORT_SMOOTHSORT_H_

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "sort/sortable.h"

namespace backsort {

namespace sort_internal {

/// Leonardo numbers: L(0) = L(1) = 1, L(k) = L(k-1) + L(k-2) + 1. L(89)
/// already exceeds 2^62, far beyond any addressable array.
constexpr std::array<uint64_t, 90> MakeLeonardo() {
  std::array<uint64_t, 90> leo{};
  leo[0] = 1;
  leo[1] = 1;
  for (size_t k = 2; k < leo.size(); ++k) {
    leo[k] = leo[k - 1] + leo[k - 2] + 1;
  }
  return leo;
}

inline constexpr std::array<uint64_t, 90> kLeonardo = MakeLeonardo();

inline size_t Leo(int k) { return static_cast<size_t>(kLeonardo[k]); }

}  // namespace sort_internal

/// Smoothsort (Dijkstra 1981): heapsort over a forest of Leonardo-number-
/// sized max-heaps laid out in the array itself. O(n log n) worst case,
/// O(n) on sorted input — the adaptivity the paper's related work credits
/// it with — but unstable and with heavy constant factors on scattered
/// disorder. Implementation follows the (p, pshift) shape encoding of
/// "Smoothsort Demystified": bit i of `p` set means a tree of order
/// (pshift + i) exists, least significant bit = rightmost (smallest) tree.
template <typename Seq>
class SmoothSorter {
 public:
  explicit SmoothSorter(Seq& seq) : seq_(seq) {}

  void Sort() {
    const size_t n = seq_.size();
    if (n < 2) return;
    uint64_t p = 1;
    int pshift = 1;

    // Build the forest left to right.
    for (size_t head = 1; head < n; ++head) {
      if ((p & 3) == 3) {
        // Two adjacent trees of consecutive orders + the new element merge
        // into one tree two orders higher.
        p = (p >> 2) | 1;
        pshift += 2;
      } else if (pshift == 1) {
        p = (p << 1) | 1;
        pshift = 0;
      } else {
        p = (p << (pshift - 1)) | 1;
        pshift = 1;
      }
      // A tree that can never be merged again must have its root placed
      // globally (trinkle); others only need their own heap fixed (sift).
      const bool is_final =
          pshift == 0 ? head + 1 == n
                      : n - head - 1 < sort_internal::Leo(pshift - 1) + 1;
      if (is_final) {
        Trinkle(p, pshift, head, /*trusty=*/false);
      } else {
        Sift(pshift, head);
      }
    }

    // Dismantle right to left; every removed root is already in place.
    for (size_t head = n - 1; head > 0; --head) {
      if (pshift <= 1) {
        // Singleton tree: drop it and renormalize to the next tree.
        p &= ~uint64_t{1};
        if (p != 0) {
          const int trail = std::countr_zero(p);
          p >>= trail;
          pshift += trail;
        }
      } else {
        // Expose the two children as new roots and re-establish the root
        // ordering for each (semitrinkle: the subtrees are trusty heaps).
        const size_t rt = head - 1;
        const size_t lf = head - 1 - sort_internal::Leo(pshift - 2);
        p = ((p & ~uint64_t{1}) << 2) | 3;
        pshift -= 2;
        Trinkle(p >> 1, pshift + 1, lf, /*trusty=*/true);
        Trinkle(p, pshift, rt, /*trusty=*/true);
      }
    }
  }

 private:
  using Element = typename Seq::Element;

  Timestamp Time(const Element& e) const { return Seq::ElementTime(e); }

  /// Restores the max-heap property of the Leonardo tree of order `shift`
  /// rooted at `head`, assuming only the root may be out of place.
  void Sift(int shift, size_t head) {
    Element val = seq_.Get(head);
    size_t hole = head;
    while (shift > 1) {
      const size_t rt = hole - 1;
      const size_t lf = hole - 1 - sort_internal::Leo(shift - 2);
      seq_.counters().comparisons += 2;
      if (Time(val) >= seq_.TimeAt(lf) && Time(val) >= seq_.TimeAt(rt)) {
        break;
      }
      ++seq_.counters().comparisons;
      if (seq_.TimeAt(lf) >= seq_.TimeAt(rt)) {
        seq_.Set(hole, seq_.Get(lf));
        hole = lf;
        shift -= 1;
      } else {
        seq_.Set(hole, seq_.Get(rt));
        hole = rt;
        shift -= 2;
      }
    }
    if (hole != head) seq_.Set(hole, val);
  }

  /// Moves the root at `head` left along the sequence of tree roots until
  /// the roots are sorted, then fixes the tree it lands in. `trusty` means
  /// the tree at head is already a valid heap (dismantling phase), so its
  /// children need not be consulted.
  void Trinkle(uint64_t p, int pshift, size_t head, bool trusty) {
    Element val = seq_.Get(head);
    size_t hole = head;
    while (p != 1) {
      const size_t stepson = hole - sort_internal::Leo(pshift);
      ++seq_.counters().comparisons;
      if (seq_.TimeAt(stepson) <= Time(val)) break;
      if (!trusty && pshift > 1) {
        const size_t rt = hole - 1;
        const size_t lf = hole - 1 - sort_internal::Leo(pshift - 2);
        seq_.counters().comparisons += 2;
        if (seq_.TimeAt(rt) >= seq_.TimeAt(stepson) ||
            seq_.TimeAt(lf) >= seq_.TimeAt(stepson)) {
          break;
        }
      }
      seq_.Set(hole, seq_.Get(stepson));
      hole = stepson;
      const int trail = std::countr_zero(p & ~uint64_t{1});
      p >>= trail;
      pshift += trail;
      trusty = false;
    }
    if (hole != head) seq_.Set(hole, val);
    if (!trusty) Sift(pshift, hole);
  }

  Seq& seq_;
};

template <typename Seq>
void SmoothSort(Seq& seq) {
  SmoothSorter<Seq>(seq).Sort();
}

}  // namespace backsort

#endif  // BACKSORT_SORT_SMOOTHSORT_H_
