#ifndef BACKSORT_SORT_TIMSORT_H_
#define BACKSORT_SORT_TIMSORT_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sort/insertion_sort.h"
#include "sort/sortable.h"

namespace backsort {

/// Timsort — the run-adaptive stable merge sort used as java.util.Arrays'
/// object sort and therefore Apache IoTDB's incumbent TVList sorter before
/// Backward-Sort. Full implementation: natural run detection with
/// descending-run reversal, minrun computation, binary-insertion run
/// extension, the merge-collapse stack invariants, and galloping merges
/// with an adaptive threshold.
template <typename Seq>
class TimSorter {
 public:
  explicit TimSorter(Seq& seq) : seq_(seq) {}

  void Sort() {
    const size_t n = seq_.size();
    if (n < 2) return;
    const size_t minrun = ComputeMinrun(n);
    size_t lo = 0;
    while (lo < n) {
      size_t run_len = CountRunAndMakeAscending(lo, n);
      if (run_len < minrun) {
        const size_t forced = std::min(minrun, n - lo);
        BinaryInsertionSortRange(seq_, lo, lo + forced, lo + run_len);
        run_len = forced;
      }
      PushRun(lo, run_len);
      MergeCollapse();
      lo += run_len;
    }
    MergeForceCollapse();
  }

 private:
  struct Run {
    size_t base;
    size_t len;
  };

  static constexpr int kMinGallop = 7;

  /// Python/Java minrun: take the 6 most significant bits of n, add 1 if any
  /// remaining bit is set. Result in [32, 64] for n >= 64.
  static size_t ComputeMinrun(size_t n) {
    size_t r = 0;
    while (n >= 64) {
      r |= n & 1;
      n >>= 1;
    }
    return n + r;
  }

  /// Detects the natural run starting at `lo` (bounded by `hi`); strictly
  /// descending runs are reversed in place. Returns the run length.
  size_t CountRunAndMakeAscending(size_t lo, size_t hi) {
    size_t i = lo + 1;
    if (i == hi) return 1;
    ++seq_.counters().comparisons;
    if (seq_.TimeAt(i) < seq_.TimeAt(lo)) {
      // Strictly descending run (strictness makes the reversal stable).
      ++i;
      while (i < hi) {
        ++seq_.counters().comparisons;
        if (seq_.TimeAt(i) >= seq_.TimeAt(i - 1)) break;
        ++i;
      }
      for (size_t a = lo, b = i - 1; a < b; ++a, --b) {
        seq_.Swap(a, b);
      }
    } else {
      ++i;
      while (i < hi) {
        ++seq_.counters().comparisons;
        if (seq_.TimeAt(i) < seq_.TimeAt(i - 1)) break;
        ++i;
      }
    }
    return i - lo;
  }

  void PushRun(size_t base, size_t len) { runs_.push_back({base, len}); }

  /// Restores the Timsort stack invariants:
  ///   runs[k-2].len > runs[k-1].len + runs[k].len
  ///   runs[k-1].len > runs[k].len
  void MergeCollapse() {
    while (runs_.size() > 1) {
      size_t k = runs_.size() - 1;
      if (k > 1 && runs_[k - 2].len <= runs_[k - 1].len + runs_[k].len) {
        if (runs_[k - 2].len < runs_[k].len) {
          MergeAt(k - 2);
        } else {
          MergeAt(k - 1);
        }
      } else if (runs_[k - 1].len <= runs_[k].len) {
        MergeAt(k - 1);
      } else {
        break;
      }
    }
  }

  void MergeForceCollapse() {
    while (runs_.size() > 1) {
      size_t k = runs_.size() - 1;
      if (k > 1 && runs_[k - 2].len < runs_[k].len) {
        MergeAt(k - 2);
      } else {
        MergeAt(k - 1);
      }
    }
  }

  /// Upper bound: index in seq[base, base+len) of the first element > key.
  /// CPython gallops exponentially from a hint before binary-searching; the
  /// plain binary search used here visits the same final index with a
  /// slightly different comparison count, which is irrelevant to the
  /// move-dominated TV-pair workloads measured in this repository.
  size_t GallopRight(Timestamp key, size_t base, size_t len) {
    size_t lo = 0;
    size_t hi_ = len;
    while (lo < hi_) {
      const size_t mid = lo + (hi_ - lo) / 2;
      ++seq_.counters().comparisons;
      if (key < seq_.TimeAt(base + mid)) {
        hi_ = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  /// Lower bound: first index in seq[base, base+len) with element >= key.
  size_t GallopLeft(Timestamp key, size_t base, size_t len) {
    size_t lo = 0;
    size_t hi_ = len;
    while (lo < hi_) {
      const size_t mid = lo + (hi_ - lo) / 2;
      ++seq_.counters().comparisons;
      if (seq_.TimeAt(base + mid) < key) {
        lo = mid + 1;
      } else {
        hi_ = mid;
      }
    }
    return lo;
  }

  void MergeAt(size_t i) {
    Run& a = runs_[i];
    Run& b = runs_[i + 1];
    size_t base1 = a.base;
    size_t len1 = a.len;
    size_t base2 = b.base;
    size_t len2 = b.len;
    a.len = len1 + len2;
    if (i == runs_.size() - 3) {
      runs_[i + 1] = runs_[i + 2];
    }
    runs_.pop_back();

    // Skip elements of run1 already <= run2's head.
    const size_t k = GallopRight(seq_.TimeAt(base2), base1, len1);
    base1 += k;
    len1 -= k;
    if (len1 == 0) return;
    // Skip elements of run2 already >= run1's tail.
    len2 = GallopLeft(seq_.TimeAt(base1 + len1 - 1), base2, len2);
    if (len2 == 0) return;
    if (len1 <= len2) {
      MergeLo(base1, len1, base2, len2);
    } else {
      MergeHi(base1, len1, base2, len2);
    }
  }

  /// Merge where the left run is the shorter: copy run1 to scratch, merge
  /// forward. Gallops when one run wins repeatedly.
  void MergeLo(size_t base1, size_t len1, size_t base2, size_t len2) {
    scratch_.clear();
    scratch_.reserve(len1);
    for (size_t i = 0; i < len1; ++i) {
      scratch_.push_back(seq_.Get(base1 + i));
      ++seq_.counters().moves;
    }
    sort_internal::NoteScratchIfSupported(seq_, scratch_.size());
    size_t a = 0;           // scratch cursor
    size_t b = base2;       // right run cursor
    size_t w = base1;       // write cursor
    const size_t b_end = base2 + len2;
    int min_gallop = kMinGallop;
    while (a < scratch_.size() && b < b_end) {
      int count_a = 0;
      int count_b = 0;
      // One-at-a-time mode.
      while (a < scratch_.size() && b < b_end) {
        ++seq_.counters().comparisons;
        if (Seq::ElementTime(scratch_[a]) <= seq_.TimeAt(b)) {
          seq_.Set(w++, scratch_[a++]);
          if (++count_a >= min_gallop && count_b == 0) break;
          count_b = 0;
        } else {
          seq_.Set(w++, seq_.Get(b++));
          if (++count_b >= min_gallop && count_a == 0) break;
          count_a = 0;
        }
      }
      if (a >= scratch_.size() || b >= b_end) break;
      // Galloping mode.
      for (;;) {
        // How many scratch elements precede seq[b]?
        size_t adv_a = 0;
        {
          const Timestamp key = seq_.TimeAt(b);
          size_t lo = a;
          size_t hi_ = scratch_.size();
          while (lo < hi_) {
            const size_t mid = lo + (hi_ - lo) / 2;
            ++seq_.counters().comparisons;
            if (Seq::ElementTime(scratch_[mid]) <= key) {
              lo = mid + 1;
            } else {
              hi_ = mid;
            }
          }
          adv_a = lo - a;
        }
        for (size_t i = 0; i < adv_a; ++i) {
          seq_.Set(w++, scratch_[a++]);
        }
        if (a >= scratch_.size()) break;
        seq_.Set(w++, seq_.Get(b++));
        if (b >= b_end) break;
        // How many right-run elements precede scratch[a]?
        size_t adv_b = 0;
        {
          const Timestamp key = Seq::ElementTime(scratch_[a]);
          size_t lo = b;
          size_t hi_ = b_end;
          while (lo < hi_) {
            const size_t mid = lo + (hi_ - lo) / 2;
            ++seq_.counters().comparisons;
            if (seq_.TimeAt(mid) < key) {
              lo = mid + 1;
            } else {
              hi_ = mid;
            }
          }
          adv_b = lo - b;
        }
        for (size_t i = 0; i < adv_b; ++i) {
          seq_.Set(w++, seq_.Get(b++));
        }
        if (b >= b_end) break;
        seq_.Set(w++, scratch_[a++]);
        if (a >= scratch_.size()) break;
        if (adv_a < static_cast<size_t>(kMinGallop) &&
            adv_b < static_cast<size_t>(kMinGallop)) {
          if (min_gallop < kMinGallop + 2) ++min_gallop;
          break;  // gallop not paying off; back to one-at-a-time
        }
        if (min_gallop > 1) --min_gallop;
      }
    }
    while (a < scratch_.size()) {
      seq_.Set(w++, scratch_[a++]);
    }
    // Any remaining right-run elements are already in place.
  }

  /// Merge where the right run is the shorter: copy run2 to scratch, merge
  /// backward from the right ends.
  void MergeHi(size_t base1, size_t len1, size_t base2, size_t len2) {
    scratch_.clear();
    scratch_.reserve(len2);
    for (size_t i = 0; i < len2; ++i) {
      scratch_.push_back(seq_.Get(base2 + i));
      ++seq_.counters().moves;
    }
    sort_internal::NoteScratchIfSupported(seq_, scratch_.size());
    ptrdiff_t a = static_cast<ptrdiff_t>(base1 + len1) - 1;  // left cursor
    ptrdiff_t s = static_cast<ptrdiff_t>(len2) - 1;          // scratch cursor
    ptrdiff_t w = static_cast<ptrdiff_t>(base2 + len2) - 1;  // write cursor
    const ptrdiff_t a_begin = static_cast<ptrdiff_t>(base1);
    while (a >= a_begin && s >= 0) {
      ++seq_.counters().comparisons;
      if (seq_.TimeAt(static_cast<size_t>(a)) >
          Seq::ElementTime(scratch_[static_cast<size_t>(s)])) {
        seq_.Set(static_cast<size_t>(w--), seq_.Get(static_cast<size_t>(a--)));
      } else {
        seq_.Set(static_cast<size_t>(w--), scratch_[static_cast<size_t>(s--)]);
      }
    }
    while (s >= 0) {
      seq_.Set(static_cast<size_t>(w--), scratch_[static_cast<size_t>(s--)]);
    }
  }

  Seq& seq_;
  std::vector<Run> runs_;
  std::vector<typename Seq::Element> scratch_;
};

template <typename Seq>
void TimSort(Seq& seq) {
  TimSorter<Seq>(seq).Sort();
}

}  // namespace backsort

#endif  // BACKSORT_SORT_TIMSORT_H_
