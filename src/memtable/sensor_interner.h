#ifndef BACKSORT_MEMTABLE_SENSOR_INTERNER_H_
#define BACKSORT_MEMTABLE_SENSOR_INTERNER_H_

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/arena.h"

namespace backsort {

/// Dense integer identity of one sensor within its shard. Assigned by the
/// shard's SensorInterner at first write and never reused; everything past
/// the wire boundary (memtables, watermarks, last cache, snapshots) keys
/// on this instead of the sensor-name string. Ids never cross the file
/// format, the WAL, or the wire — those carry names, so sealed bytes and
/// replication streams are identical to the string-keyed engine and ids
/// can be reassigned freely on recovery.
using SensorId = uint32_t;
inline constexpr SensorId kInvalidSensorId = UINT32_MAX;

/// Append-only string -> SensorId table, one per shard: a flat
/// open-addressing index over ids, a reverse id -> string_view vector, and
/// the name bytes themselves in a bump arena — 1M sensors cost ~one
/// allocation per 256 KiB arena block instead of one heap string + one
/// red-black-tree node per name per map.
///
/// Returned string_views point into the arena and stay valid for the
/// interner's lifetime even as the index grows (the arena never moves
/// existing bytes). The interner is owned by the shard and outlives every
/// memtable of that shard, so chunks snapshot the view once at creation
/// and flush workers read names without synchronizing with the interner.
///
/// Not thread-safe: all access happens under the owning shard's mutex.
class SensorInterner {
 public:
  SensorInterner() : slots_(kInitialSlots, kInvalidSensorId) {}

  SensorInterner(const SensorInterner&) = delete;
  SensorInterner& operator=(const SensorInterner&) = delete;

  /// Id of `name`, interning it on first sight.
  SensorId Intern(std::string_view name) {
    const uint64_t h = Hash(name);
    size_t slot = Probe(h, name);
    if (slots_[slot] != kInvalidSensorId) return slots_[slot];
    const SensorId id = static_cast<SensorId>(entries_.size());
    char* stored = arena_.AllocateArray<char>(name.size());
    std::memcpy(stored, name.data(), name.size());
    entries_.push_back(Entry{stored, static_cast<uint32_t>(name.size())});
    slots_[slot] = id;
    if ((entries_.size() + 1) * 2 > slots_.size()) Rehash();
    return id;
  }

  /// Id of `name` if already interned, else kInvalidSensorId.
  SensorId Lookup(std::string_view name) const {
    const size_t slot = const_cast<SensorInterner*>(this)->Probe(Hash(name),
                                                                 name);
    return slots_[slot];
  }

  /// Name of an interned id; the view is stable for the interner's
  /// lifetime.
  std::string_view NameOf(SensorId id) const {
    const Entry& e = entries_[id];
    return std::string_view(e.data, e.len);
  }

  /// Number of interned sensors; ids are exactly [0, size()).
  size_t size() const { return entries_.size(); }

  /// Exact heap footprint: name bytes (arena blocks) + reverse table +
  /// hash slots.
  size_t MemoryBytes() const {
    return arena_.MemoryBytes() + entries_.capacity() * sizeof(Entry) +
           slots_.capacity() * sizeof(SensorId);
  }

 private:
  struct Entry {
    const char* data;
    uint32_t len;
  };
  static constexpr size_t kInitialSlots = 64;  // power of two

  static uint64_t Hash(std::string_view s) {
    uint64_t h = 1469598103934665603ull;  // FNV-1a
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return h;
  }

  bool Matches(SensorId id, std::string_view name) const {
    const Entry& e = entries_[id];
    return e.len == name.size() && std::memcmp(e.data, name.data(),
                                               e.len) == 0;
  }

  /// Index of `name`'s slot (occupied by its id) or of the empty slot
  /// where it would be inserted. slots_.size() is a power of two.
  size_t Probe(uint64_t h, std::string_view name) {
    const size_t mask = slots_.size() - 1;
    size_t slot = static_cast<size_t>(h) & mask;
    while (slots_[slot] != kInvalidSensorId &&
           !Matches(slots_[slot], name)) {
      slot = (slot + 1) & mask;
    }
    return slot;
  }

  void Rehash() {
    std::vector<SensorId> old = std::move(slots_);
    slots_.assign(old.size() * 2, kInvalidSensorId);
    const size_t mask = slots_.size() - 1;
    for (const SensorId id : old) {
      if (id == kInvalidSensorId) continue;
      size_t slot = static_cast<size_t>(Hash(NameOf(id))) & mask;
      while (slots_[slot] != kInvalidSensorId) slot = (slot + 1) & mask;
      slots_[slot] = id;
    }
  }

  Arena arena_;
  std::vector<Entry> entries_;
  std::vector<SensorId> slots_;
};

}  // namespace backsort

#endif  // BACKSORT_MEMTABLE_SENSOR_INTERNER_H_
