#ifndef BACKSORT_MEMTABLE_MEMTABLE_H_
#define BACKSORT_MEMTABLE_MEMTABLE_H_

#include <atomic>
#include <mutex>
#include <new>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/types.h"
#include "memtable/sensor_interner.h"
#include "tvlist/tv_list.h"

namespace backsort {

/// One memtable of the write path (Section V-A): a flat SensorId-indexed
/// table of chunks, each holding one sensor's TVList. A memtable is either
/// *working* (accepting writes) or *flushing* (sealed, queued for
/// sort+encode+disk). Value type is double throughout the system layer;
/// the algorithm-level experiments use typed TVLists directly.
///
/// High-cardinality layout: chunk objects and every TVList array are
/// placement-allocated in a per-memtable bump arena, so a 1M-sensor table
/// costs a few thousand 256 KiB blocks instead of millions of small heap
/// allocations, and retiring the table returns the memory to the OS
/// wholesale (see common/arena.h). Sensor identity is the shard's dense
/// SensorId; the `sensor` name view stored per chunk points into the
/// shard's interner, which outlives every memtable of the shard, so the
/// flush path reads names without owning or copying strings.
class MemTable {
 public:
  enum class State { kWorking, kFlushing };

  /// One sensor's chunk: its TVList (arena-backed) plus the identity the
  /// flush path needs — the interner-owned name view and the dense id.
  struct Chunk {
    Chunk(Arena* arena, std::string_view name, SensorId sensor_id)
        : list(DoubleTVList::kDefaultArraySize, arena),
          sensor(name),
          id(sensor_id) {}

    DoubleTVList list;
    std::string_view sensor;  ///< stable view into the shard's interner
    SensorId id;
  };

  MemTable() = default;
  // Neither copyable nor movable: the engine shares sealed tables between
  // the flush worker and queries, synchronized via mu().
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  ~MemTable() {
    // Chunks live in the arena: run their destructors (frees the TVList
    // chain vectors, which are heap), then the arena member releases every
    // block wholesale.
    for (Chunk* c : chunks_) c->~Chunk();
  }

  /// Appends one point in arrival order. Only legal while working, under
  /// the owning shard's lock. `sensor` must stay valid for the table's
  /// lifetime (the interner guarantees this on the engine path).
  void Write(SensorId id, std::string_view sensor, Timestamp t, double v) {
    Chunk* c = GetOrCreate(id, sensor);
    const size_t before = c->list.ChainBytes();
    c->list.Put(t, v);
    chain_bytes_ += c->list.ChainBytes() - before;
    total_points_.fetch_add(1, std::memory_order_relaxed);
    StoreApprox();
  }

  /// Appends `n` points of one sensor in arrival order — one index lookup
  /// and one footprint/count update for the whole slice, with the bulk
  /// TVList::AppendN underneath. State is bit-identical to `n` Write
  /// calls. Same contract as Write: working table only, under the owning
  /// shard's lock.
  void WriteN(SensorId id, std::string_view sensor, const TvPairDouble* points,
              size_t n) {
    if (n == 0) return;
    Chunk* c = GetOrCreate(id, sensor);
    const size_t before = c->list.ChainBytes();
    c->list.AppendN(points, n);
    chain_bytes_ += c->list.ChainBytes() - before;
    total_points_.fetch_add(n, std::memory_order_relaxed);
    StoreApprox();
  }

  /// Total points across all sensors — the flush trigger input. The paper
  /// notes ~100k points is the appropriate in-memory size in IoTDB (the
  /// engine splits that budget across shards). Atomic, so the engine
  /// facade can read it for cross-shard flush-trigger and metrics
  /// decisions without taking the shard lock.
  size_t total_points() const {
    return total_points_.load(std::memory_order_relaxed);
  }

  State state() const { return state_; }
  /// Seals the table: no further writes; flush pipeline takes over.
  void MarkFlushing() { state_ = State::kFlushing; }

  /// Chunks in first-write order. The pointees are arena-owned; they live
  /// exactly as long as the table.
  const std::vector<Chunk*>& chunks() const { return chunks_; }

  DoubleTVList* GetChunk(SensorId id) {
    return id < index_.size() && index_[id] != nullptr ? &index_[id]->list
                                                       : nullptr;
  }
  const DoubleTVList* GetChunk(SensorId id) const {
    return id < index_.size() && index_[id] != nullptr ? &index_[id]->list
                                                       : nullptr;
  }

  /// Exact heap footprint: arena blocks (chunk objects + TVList arrays +
  /// their block slack), the two flat chunk tables, and the per-chunk
  /// chain-pointer vectors. Walks the chunks, so the caller must hold the
  /// owning shard's lock (or have exclusive access); equals
  /// ApproxMemoryBytes by construction — memtable_accounting_test pins it.
  size_t MemoryBytes() const {
    size_t chains = 0;
    for (const Chunk* c : chunks_) chains += c->list.ChainBytes();
    return arena_.MemoryBytes() + TableBytes() + chains;
  }

  /// Lock-free footprint, maintained exactly on every Write/WriteN from
  /// O(1) inputs (arena total, table capacities, incremental chain bytes),
  /// for the engine facade's metrics snapshot and flush accounting.
  size_t ApproxMemoryBytes() const {
    return approx_bytes_.load(std::memory_order_relaxed);
  }

  /// Guards post-seal access: the flush worker sorts chunk TVLists in place
  /// outside the engine lock, so concurrent query reads must serialize on
  /// this mutex.
  std::mutex& mu() const { return mu_; }

 private:
  Chunk* GetOrCreate(SensorId id, std::string_view sensor) {
    if (id >= index_.size()) index_.resize(id + 1, nullptr);
    Chunk*& slot = index_[id];
    if (slot == nullptr) {
      void* mem = arena_.Allocate(sizeof(Chunk), alignof(Chunk));
      slot = new (mem) Chunk(&arena_, sensor, id);
      chunks_.push_back(slot);
    }
    return slot;
  }

  size_t TableBytes() const {
    return (index_.capacity() + chunks_.capacity()) * sizeof(Chunk*);
  }

  void StoreApprox() {
    approx_bytes_.store(arena_.MemoryBytes() + TableBytes() + chain_bytes_,
                        std::memory_order_relaxed);
  }

  Arena arena_;
  /// Dense SensorId -> chunk table (nullptr where this table has no points
  /// for the id) and the same chunks in first-write order for iteration.
  std::vector<Chunk*> index_;
  std::vector<Chunk*> chunks_;
  /// Sum of ChainBytes over all chunks, maintained incrementally.
  size_t chain_bytes_ = 0;
  std::atomic<size_t> total_points_{0};
  std::atomic<size_t> approx_bytes_{0};
  State state_ = State::kWorking;
  mutable std::mutex mu_;
};

}  // namespace backsort

#endif  // BACKSORT_MEMTABLE_MEMTABLE_H_
