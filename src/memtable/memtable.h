#ifndef BACKSORT_MEMTABLE_MEMTABLE_H_
#define BACKSORT_MEMTABLE_MEMTABLE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "tvlist/tv_list.h"

namespace backsort {

/// One memtable of the write path (Section V-A): a map from sensor id to a
/// chunk holding that sensor's TVList. A memtable is either *working*
/// (accepting writes) or *flushing* (sealed, queued for sort+encode+disk).
/// Value type is double throughout the system layer; the algorithm-level
/// experiments use typed TVLists directly.
class MemTable {
 public:
  enum class State { kWorking, kFlushing };

  MemTable() = default;
  // Neither copyable nor movable: the engine shares sealed tables between
  // the flush worker and queries, synchronized via mu().
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Appends one point in arrival order. Only legal while working, under
  /// the owning shard's lock.
  void Write(const std::string& sensor, Timestamp t, double v) {
    auto it = chunks_.find(sensor);
    if (it == chunks_.end()) {
      it = chunks_.emplace(sensor, std::make_unique<DoubleTVList>()).first;
    }
    const size_t before = it->second->MemoryBytes();
    it->second->Put(t, v);
    approx_bytes_.fetch_add(it->second->MemoryBytes() - before,
                            std::memory_order_relaxed);
    total_points_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends `n` points of one sensor in arrival order — one chunk-map
  /// lookup and one footprint/count update for the whole slice, with the
  /// bulk TVList::AppendN underneath. State is bit-identical to `n` Write
  /// calls. Same contract as Write: working table only, under the owning
  /// shard's lock.
  void WriteN(const std::string& sensor, const TvPairDouble* points,
              size_t n) {
    if (n == 0) return;
    auto it = chunks_.find(sensor);
    if (it == chunks_.end()) {
      it = chunks_.emplace(sensor, std::make_unique<DoubleTVList>()).first;
    }
    const size_t before = it->second->MemoryBytes();
    it->second->AppendN(points, n);
    approx_bytes_.fetch_add(it->second->MemoryBytes() - before,
                            std::memory_order_relaxed);
    total_points_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Total points across all sensors — the flush trigger input. The paper
  /// notes ~100k points is the appropriate in-memory size in IoTDB (the
  /// engine splits that budget across shards). Atomic, so the engine
  /// facade can read it for cross-shard flush-trigger and metrics
  /// decisions without taking the shard lock.
  size_t total_points() const {
    return total_points_.load(std::memory_order_relaxed);
  }

  State state() const { return state_; }
  /// Seals the table: no further writes; flush pipeline takes over.
  void MarkFlushing() { state_ = State::kFlushing; }

  const std::map<std::string, std::unique_ptr<DoubleTVList>>& chunks() const {
    return chunks_;
  }
  std::map<std::string, std::unique_ptr<DoubleTVList>>& chunks() {
    return chunks_;
  }

  DoubleTVList* GetChunk(const std::string& sensor) {
    auto it = chunks_.find(sensor);
    return it == chunks_.end() ? nullptr : it->second.get();
  }
  const DoubleTVList* GetChunk(const std::string& sensor) const {
    auto it = chunks_.find(sensor);
    return it == chunks_.end() ? nullptr : it->second.get();
  }

  /// Exact heap footprint; walks the chunk map, so the caller must hold
  /// the owning shard's lock (or have exclusive access).
  size_t MemoryBytes() const {
    size_t total = 0;
    for (const auto& [_, list] : chunks_) total += list->MemoryBytes();
    return total;
  }

  /// Lock-free footprint estimate maintained on every Write, for the
  /// engine facade's metrics snapshot and flush accounting.
  size_t ApproxMemoryBytes() const {
    return approx_bytes_.load(std::memory_order_relaxed);
  }

  /// Guards post-seal access: the flush worker sorts chunk TVLists in place
  /// outside the engine lock, so concurrent query reads must serialize on
  /// this mutex.
  std::mutex& mu() const { return mu_; }

 private:
  std::map<std::string, std::unique_ptr<DoubleTVList>> chunks_;
  std::atomic<size_t> total_points_{0};
  std::atomic<size_t> approx_bytes_{0};
  State state_ = State::kWorking;
  mutable std::mutex mu_;
};

}  // namespace backsort

#endif  // BACKSORT_MEMTABLE_MEMTABLE_H_
