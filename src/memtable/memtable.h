#ifndef BACKSORT_MEMTABLE_MEMTABLE_H_
#define BACKSORT_MEMTABLE_MEMTABLE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "tvlist/tv_list.h"

namespace backsort {

/// One memtable of the write path (Section V-A): a map from sensor id to a
/// chunk holding that sensor's TVList. A memtable is either *working*
/// (accepting writes) or *flushing* (sealed, queued for sort+encode+disk).
/// Value type is double throughout the system layer; the algorithm-level
/// experiments use typed TVLists directly.
class MemTable {
 public:
  enum class State { kWorking, kFlushing };

  MemTable() = default;
  // Neither copyable nor movable: the engine shares sealed tables between
  // the flush worker and queries, synchronized via mu().
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Appends one point in arrival order. Only legal while working.
  void Write(const std::string& sensor, Timestamp t, double v) {
    auto it = chunks_.find(sensor);
    if (it == chunks_.end()) {
      it = chunks_.emplace(sensor, std::make_unique<DoubleTVList>()).first;
    }
    it->second->Put(t, v);
    ++total_points_;
  }

  /// Total points across all sensors — the flush trigger input. The paper
  /// notes ~100k points is the appropriate in-memory size in IoTDB.
  size_t total_points() const { return total_points_; }

  State state() const { return state_; }
  /// Seals the table: no further writes; flush pipeline takes over.
  void MarkFlushing() { state_ = State::kFlushing; }

  const std::map<std::string, std::unique_ptr<DoubleTVList>>& chunks() const {
    return chunks_;
  }
  std::map<std::string, std::unique_ptr<DoubleTVList>>& chunks() {
    return chunks_;
  }

  DoubleTVList* GetChunk(const std::string& sensor) {
    auto it = chunks_.find(sensor);
    return it == chunks_.end() ? nullptr : it->second.get();
  }
  const DoubleTVList* GetChunk(const std::string& sensor) const {
    auto it = chunks_.find(sensor);
    return it == chunks_.end() ? nullptr : it->second.get();
  }

  size_t MemoryBytes() const {
    size_t total = 0;
    for (const auto& [_, list] : chunks_) total += list->MemoryBytes();
    return total;
  }

  /// Guards post-seal access: the flush worker sorts chunk TVLists in place
  /// outside the engine lock, so concurrent query reads must serialize on
  /// this mutex.
  std::mutex& mu() const { return mu_; }

 private:
  std::map<std::string, std::unique_ptr<DoubleTVList>> chunks_;
  size_t total_points_ = 0;
  State state_ = State::kWorking;
  mutable std::mutex mu_;
};

}  // namespace backsort

#endif  // BACKSORT_MEMTABLE_MEMTABLE_H_
